"""Problem specification.

A :class:`GemmSpec` is what the frontend extracts from the user's C code
(or what API users construct directly): the DGEMM operation

    C = α·(A × B) + β·C

with A of size M×K, B of size K×N, C of size M×N (§2), an optional batch
dimension, and an optional fused element-wise prologue (over A) or
epilogue (over C).  Shapes are kept *symbolic* (parameter names) in the
compiler — matching the paper's parametric generated code — and bound to
concrete values at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.poly.affine import aff_var
from repro.poly.imap import AffineMap
from repro.poly.iset import IntegerSet, box_set
from repro.poly.space import Space


@dataclass(frozen=True)
class GemmSpec:
    """One (possibly batched, possibly fused) DGEMM problem."""

    m_param: str = "M"
    n_param: str = "N"
    k_param: str = "K"
    batch_param: Optional[str] = None  # e.g. "B" for batched GEMM
    a_name: str = "A"
    b_name: str = "B"
    c_name: str = "C"
    #: Statement name used in schedule trees, following the paper (S1).
    stmt_name: str = "S1"
    has_alpha: bool = True
    has_beta: bool = True
    #: Fused element-wise prologue applied to A (statement S0, Fig. 12a).
    prologue_func: Optional[str] = None
    #: Fused element-wise epilogue applied to C (statement S2, Fig. 12b).
    epilogue_func: Optional[str] = None
    #: Element type: "float64" (DGEMM, the paper's focus) or "float32"
    #: (SGEMM — §2: "other GEMM variants share the same structure").
    dtype: str = "float64"
    #: Transposed operands: ``C = α·op(A)·op(B) + β·C`` with
    #: ``op(A) = A^T`` when ``trans_a`` (A stored K×M, accessed A[k][i])
    #: and ``op(B) = B^T`` when ``trans_b`` (B stored N×K, accessed
    #: B[j][k]) — §2: "other GEMM variants share the same structure".
    trans_a: bool = False
    trans_b: bool = False

    def __post_init__(self) -> None:
        names = {self.a_name, self.b_name, self.c_name}
        if len(names) != 3:
            raise ConfigurationError("A, B and C must have distinct names")
        params = {self.m_param, self.n_param, self.k_param}
        if len(params) != 3:
            raise ConfigurationError("M, N and K parameter names must differ")
        if self.batch_param in params:
            raise ConfigurationError("batch parameter must not collide with M/N/K")
        if self.dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"unsupported dtype {self.dtype!r}; use float64 or float32"
            )
        if self.prologue_func and self.epilogue_func:
            raise ConfigurationError(
                "the paper's approach fuses a single prologue OR epilogue "
                "(extending to both needs a smaller assembly kernel shape, §7.3)"
            )

    # -- polyhedral views --------------------------------------------------

    @property
    def is_batched(self) -> bool:
        return self.batch_param is not None

    def loop_dims(self) -> Tuple[str, ...]:
        dims = ("i", "j", "k")
        return (("b",) + dims) if self.is_batched else dims

    def statement_space(self) -> Space:
        return Space(self.stmt_name, self.loop_dims())

    def domain(self) -> IntegerSet:
        """``{ S1(b?, i, j, k) : 0 <= i < M ∧ 0 <= j < N ∧ 0 <= k < K }``."""
        bounds: Dict[str, Tuple[object, object]] = {
            "i": (0, aff_var(self.m_param)),
            "j": (0, aff_var(self.n_param)),
            "k": (0, aff_var(self.k_param)),
        }
        if self.is_batched:
            bounds["b"] = (0, aff_var(self.batch_param))
        return box_set(self.statement_space(), bounds)

    def a_dims(self) -> Tuple[str, str]:
        """Storage dims (row param, col param) of the A operand."""
        return (
            (self.k_param, self.m_param) if self.trans_a
            else (self.m_param, self.k_param)
        )

    def b_dims(self) -> Tuple[str, str]:
        return (
            (self.n_param, self.k_param) if self.trans_b
            else (self.k_param, self.n_param)
        )

    def c_dims(self) -> Tuple[str, str]:
        return (self.m_param, self.n_param)

    def accesses(self):
        """Read/write access relations of the GEMM statement."""
        from repro.poly.dependences import Access

        space = self.statement_space()
        i, j, k = aff_var("i"), aff_var("j"), aff_var("k")
        prefix = [aff_var("b")] if self.is_batched else []

        def arr_space(name: str, rank: int) -> Space:
            dims = tuple(f"d{x}" for x in range(rank))
            return Space(name, dims)

        rank = 3 if self.is_batched else 2
        a_subs = [k, i] if self.trans_a else [i, k]
        b_subs = [j, k] if self.trans_b else [k, j]
        c_map = AffineMap.access(space, arr_space(self.c_name, rank), prefix + [i, j])
        a_map = AffineMap.access(space, arr_space(self.a_name, rank), prefix + a_subs)
        b_map = AffineMap.access(space, arr_space(self.b_name, rank), prefix + b_subs)
        return [
            Access(self.c_name, c_map, True),
            Access(self.c_name, c_map, False),
            Access(self.a_name, a_map, False),
            Access(self.b_name, b_map, False),
        ]

    # -- runtime helpers -----------------------------------------------------

    def param_names(self) -> Tuple[str, ...]:
        base = (self.m_param, self.n_param, self.k_param)
        return ((self.batch_param,) + base) if self.is_batched else base

    def bind_params(
        self, M: int, N: int, K: int, batch: Optional[int] = None
    ) -> Dict[str, int]:
        """Concrete parameter environment for execution."""
        for name, value in ((self.m_param, M), (self.n_param, N), (self.k_param, K)):
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        env = {self.m_param: M, self.n_param: N, self.k_param: K}
        if self.is_batched:
            if batch is None or batch <= 0:
                raise ConfigurationError(
                    "batched spec requires a positive batch size"
                )
            env[self.batch_param] = batch
        elif batch is not None:
            raise ConfigurationError("non-batched spec got a batch size")
        return env

    @property
    def itemsize(self) -> int:
        return 8 if self.dtype == "float64" else 4

    def flops(self, M: int, N: int, K: int, batch: int = 1) -> float:
        """Floating-point operations of the useful GEMM work."""
        return 2.0 * M * N * K * batch
