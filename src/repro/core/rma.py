"""Implementing RMA broadcast (§5).

With the strip-mined decomposition, each CPE's DMA buffer holds exactly
one of the eight k-slices of the current 256-element k chunk: CPE
``(Rid, Cid)`` holds the A slice ``km = Cid`` of its mesh-row's panel and
the B slice ``km = Rid`` of its mesh-column's panel.  At inner iteration
``km = l`` the owning CPE broadcasts its slice:

* ``A_τ`` travels along the mesh **row** (every CPE in the row needs the
  same 64 rows of A) — sender condition ``Cid == l``;
* ``B_τ`` travels along the mesh **column** — sender condition
  ``Rid == l``.

Both broadcasts are launched together after a ``synch()`` (§5's snippet),
and double buffering (§6.3) gives the destination buffer and the reply
counters a parity selector ``l mod 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping

from repro.errors import CompilationError
from repro.core.decomposition import Decomposition
from repro.poly.affine import AffExpr, aff_const, aff_var


@dataclass(frozen=True)
class RmaSpec:
    """Everything needed to emit/execute one RMA broadcast."""

    matrix: str  # "A" | "B" (role, not array name)
    kind: str  # "row" | "col"
    #: mesh coordinate that owns the slice being broadcast
    owner_var: str  # "Cid" for A, "Rid" for B
    #: loop variable enumerating slices (the inner k loop)
    slice_var: str  # "km"
    src_buffer: str
    src_slot_expr: AffExpr  # parity over the *outer* k loop (DMA level)
    dst_buffer: str
    dst_slot_expr: AffExpr  # parity over the *inner* k loop (RMA level)
    size: int  # elements
    replys: str
    replyr: str
    reply_slot_expr: AffExpr

    def substituted(self, bindings: Mapping[str, AffExpr]) -> "RmaSpec":
        """Issue-ahead rewriting (``km -> km + 1``) for the second-level
        software pipeline (§6.1, Fig. 10c)."""
        return replace(
            self,
            src_slot_expr=self.src_slot_expr.substitute(bindings),
            dst_slot_expr=self.dst_slot_expr.substitute(bindings),
            reply_slot_expr=self.reply_slot_expr.substitute(bindings),
        )


def derive_rma_specs(dec: Decomposition) -> Dict[str, RmaSpec]:
    """Build the row broadcast for A and the column broadcast for B."""
    plan = dec.plan
    if not plan.use_rma:
        raise CompilationError("RMA derivation requested but the plan has no RMA")
    dma_parity = (
        aff_var("ko").mod(2) if plan.double_buffered else aff_const(0)
    )
    bc_parity = aff_var("km").mod(2) if plan.double_buffered else aff_const(0)
    specs: Dict[str, RmaSpec] = {}
    specs["rbcastA"] = RmaSpec(
        matrix="A",
        kind="row",
        owner_var="Cid",
        slice_var="km",
        src_buffer="local_A_dma",
        src_slot_expr=dma_parity,
        dst_buffer="local_A_bc",
        dst_slot_expr=bc_parity,
        size=plan.mt * plan.kt,
        replys="rbcast_replysA",
        replyr="rbcast_replyrA",
        reply_slot_expr=bc_parity,
    )
    specs["cbcastB"] = RmaSpec(
        matrix="B",
        kind="col",
        owner_var="Rid",
        slice_var="km",
        src_buffer="local_B_dma",
        src_slot_expr=dma_parity,
        dst_buffer="local_B_bc",
        dst_slot_expr=bc_parity,
        size=plan.kt * plan.nt,
        replys="cbcast_replysB",
        replyr="cbcast_replyrB",
        reply_slot_expr=bc_parity,
    )
    return specs
