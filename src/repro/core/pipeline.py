"""The end-to-end compiler driver (§2.3, §7).

``GemmCompiler.compile`` runs the full pass order the paper describes:
dependence analysis → analytical tile selection → compute decomposition →
DMA derivation → RMA insertion → latency hiding → micro-kernel mark →
AST generation — and packages the result as a
:class:`~repro.runtime.program.CompiledProgram`.

Compilation takes milliseconds; the paper's §8.5 contrasts exactly this
("seconds, including the integer linear solver") with the months of
manual work behind the xMath library, so the driver records its own wall
time on every run.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.errors import CompilationError
from repro.core.decomposition import Decomposition, decompose
from repro.core.dma import derive_dma_specs
from repro.core.latency_hiding import insert_communication
from repro.core.lowering import MICRO_KERNEL_MARK, GemmLowering
from repro.core.options import CompilerOptions
from repro.core.rma import derive_rma_specs
from repro.core.spec import GemmSpec
from repro.core.tile_model import plan_for_kernel
from repro.codegen.microkernel import get_kernel
from repro.poly.affine import aff_const, aff_var
from repro.poly.astgen import AstGenerator
from repro.poly.astnodes import BufferDecl, CpeProgram, ReplyDecl
from repro.poly.schedule_tree import parent_map
from repro.poly.transforms import insert_mark
from repro.runtime.program import CompiledProgram
from repro.sunway.arch import SW26010PRO, ArchSpec


class GemmCompiler:
    """Compile naive GEMM specifications to SW26010Pro athread programs."""

    def __init__(
        self,
        arch: ArchSpec = SW26010PRO,
        options: Optional[CompilerOptions] = None,
    ) -> None:
        self.arch = arch
        self.options = options or CompilerOptions()

    # -- public API ---------------------------------------------------------

    def compile(self, spec: GemmSpec) -> CompiledProgram:
        started = time.perf_counter()
        options = self._reconcile_options(spec)
        plan = plan_for_kernel(
            self.arch, options, trans_a=spec.trans_a, trans_b=spec.trans_b,
            itemsize=spec.itemsize,
        )
        dec = decompose(spec, plan, options)
        dec.arch = self.arch  # used by the lowering for kernel naming/cost

        dma_specs = derive_dma_specs(dec)
        rma_specs = derive_rma_specs(dec) if plan.use_rma else None

        self._mark_micro_kernel(dec)
        insert_communication(dec, dma_specs, rma_specs)

        lowering = GemmLowering(dec)
        generator = AstGenerator(lowering)
        body = generator.generate(dec.root, spec.param_names())

        cpe_program = CpeProgram(
            buffers=self._buffer_decls(dec),
            replies=self._reply_decls(dec, dma_specs, rma_specs),
            body=body,
            kernel_name=get_kernel(self.arch, options.use_asm).name,
        )
        elapsed = time.perf_counter() - started
        return CompiledProgram(
            spec=spec,
            options=options,
            arch=self.arch,
            plan=plan,
            decomposition=dec,
            cpe_program=cpe_program,
            codegen_seconds=elapsed,
        )

    # -- helpers ----------------------------------------------------------------

    def _reconcile_options(self, spec: GemmSpec) -> CompilerOptions:
        options = self.options
        if spec.is_batched and not options.batch:
            raise CompilationError(
                "batched input requires the --batch compiler option"
            )
        if spec.prologue_func and options.fusion != "prologue":
            options = options.with_(fusion="prologue", prologue_func=spec.prologue_func)
        if spec.epilogue_func and options.fusion != "epilogue":
            options = options.with_(fusion="epilogue", epilogue_func=spec.epilogue_func)
        if options.fusion == "prologue" and not spec.prologue_func:
            raise CompilationError("prologue fusion requested but spec has none")
        if options.fusion == "epilogue" and not spec.epilogue_func:
            raise CompilationError("epilogue fusion requested but spec has none")
        return options

    def _mark_micro_kernel(self, dec: Decomposition) -> None:
        plan = dec.plan
        point = dec.bands["point"]
        parents = parent_map(dec.root)
        parent = parents.get(id(point))
        if parent is None:
            raise CompilationError("point band has no parent")
        if plan.use_rma:
            a_buffer, b_buffer = "local_A_bc", "local_B_bc"
            slot = aff_var("km").mod(2) if plan.double_buffered else aff_const(0)
        else:
            a_buffer, b_buffer = "local_A_dma", "local_B_dma"
            slot = aff_var("ktile").mod(2) if plan.double_buffered else aff_const(0)
        insert_mark(
            parent,
            point,
            MICRO_KERNEL_MARK,
            payload={
                "a_buffer": a_buffer,
                "a_slot": slot,
                "b_buffer": b_buffer,
                "b_slot": slot,
            },
        )

    def _buffer_decls(self, dec: Decomposition) -> List[BufferDecl]:
        ctype = "double" if dec.spec.dtype == "float64" else "float"
        return [
            BufferDecl(b.name, b.shape, ctype) for b in dec.plan.buffers
        ]

    def _reply_decls(self, dec, dma_specs, rma_specs) -> List[ReplyDecl]:
        slots = 2 if dec.plan.double_buffered else 1
        decls: Dict[str, ReplyDecl] = {}
        for spec in dma_specs.values():
            count = slots if spec.reply not in ("get_replyC", "put_replyC") else 1
            decls[spec.reply] = ReplyDecl(spec.reply, count)
        if rma_specs:
            for spec in rma_specs.values():
                decls[spec.replys] = ReplyDecl(spec.replys, slots)
                decls[spec.replyr] = ReplyDecl(spec.replyr, slots)
        return list(decls.values())


def compile_gemm(
    spec: Optional[GemmSpec] = None,
    arch: ArchSpec = SW26010PRO,
    options: Optional[CompilerOptions] = None,
) -> CompiledProgram:
    """One-call convenience wrapper (used by examples and the CLI)."""
    return GemmCompiler(arch, options).compile(spec or GemmSpec())
