"""The end-to-end compiler driver (§2.3, §7).

``GemmCompiler`` is a thin facade over the instrumented pass pipeline of
:mod:`repro.core.passes`: it reconciles the options against the spec,
builds the variant-aware pass list (batched, fused, no-RMA and
no-latency-hiding requests are pipeline edits, not branches inside
passes), runs it through a :class:`~repro.core.passes.PassManager`, and
packages the result as a :class:`~repro.runtime.program.CompiledProgram`
carrying a compact per-pass ``pass_stats`` block.

Compilation takes milliseconds; the paper's §8.5 contrasts exactly this
("seconds, including the integer linear solver") with the months of
manual work behind the xMath library, so the driver records per-pass
wall time on every run — ``codegen_seconds`` is *defined* as the sum of
the pass timings, so the engineering-cost number decomposes by paper
stage.
"""

from __future__ import annotations

import time
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.options import CompilerOptions
from repro.core.passes import (
    CompileContext,
    Pass,
    PassManager,
    SnapshotSink,
    apply_disabled_passes,
    build_pipeline,
    pipeline_identity,
    reconcile_options,
)
from repro.core.spec import GemmSpec
from repro.runtime.program import CompiledProgram
from repro.sunway.arch import SW26010PRO, ArchSpec


class GemmCompiler:
    """Compile naive GEMM specifications to SW26010Pro athread programs.

    ``disable_passes`` removes disableable passes by rewriting the
    effective options and rebuilding the pipeline — disabling
    ``latency-hiding`` therefore reproduces the §8.1 no-hiding ablation
    bit-exactly.  ``replacements`` swaps a named default pass for a
    custom :class:`~repro.core.passes.Pass` instance.
    """

    def __init__(
        self,
        arch: ArchSpec = SW26010PRO,
        options: Optional[CompilerOptions] = None,
        disable_passes: Sequence[str] = (),
        replacements: Optional[Mapping[str, Pass]] = None,
    ) -> None:
        self.arch = arch
        self.options = options or CompilerOptions()
        self.disable_passes = tuple(disable_passes)
        self.replacements = dict(replacements or {})

    # -- public API ---------------------------------------------------------

    def effective_options(self, spec: GemmSpec) -> CompilerOptions:
        """The reconciled option set this compiler would compile with."""
        options = reconcile_options(spec, self.options, self.arch)
        return apply_disabled_passes(options, self.disable_passes)

    def pipeline_for(self, spec: GemmSpec) -> List[Pass]:
        """The variant-aware pass list for one spec."""
        return build_pipeline(
            spec, self.arch, self.effective_options(spec), self.replacements
        )

    def pipeline_identity_for(self, spec: GemmSpec) -> str:
        return pipeline_identity(self.pipeline_for(spec))

    def compile(
        self, spec: GemmSpec, timeout_s: Optional[float] = None
    ) -> CompiledProgram:
        program, _ = self.compile_with_context(spec, timeout_s=timeout_s)
        return program

    def compile_with_context(
        self,
        spec: GemmSpec,
        print_after: Optional[Sequence[str]] = None,
        sink: Optional[SnapshotSink] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[CompiledProgram, CompileContext]:
        """Compile and hand back the pass context (snapshots, diagnostics).

        This is the introspection entry point behind ``swgemm compile
        --print-after`` / ``--dump-ir``: the returned context holds one
        IR snapshot per executed pass and every structured diagnostic.
        ``timeout_s`` sets a wall-clock deadline for the whole pipeline
        (:class:`repro.errors.CompileTimeout` on overrun).
        """
        options = self.effective_options(spec)
        passes = self.pipeline_for(spec)
        ctx = CompileContext(spec=spec, arch=self.arch, options=options)
        manager = PassManager(passes, print_after=print_after, sink=sink)
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        manager.run(ctx, deadline=deadline)
        stats = tuple(ctx.stats)
        program = CompiledProgram(
            spec=spec,
            options=options,
            arch=self.arch,
            plan=ctx.plan,
            decomposition=ctx.decomposition,
            cpe_program=ctx.cpe_program,
            codegen_seconds=sum(s.seconds for s in stats),
            pass_stats=stats,
            verification=ctx.verification,
        )
        return program, ctx


def compile_gemm(
    spec: Optional[GemmSpec] = None,
    arch: ArchSpec = SW26010PRO,
    options: Optional[CompilerOptions] = None,
) -> CompiledProgram:
    """One-call convenience wrapper (used by examples and the CLI)."""
    return GemmCompiler(arch, options).compile(spec or GemmSpec())
