"""The paper's contribution: the swgemm compiler.

End-to-end pipeline (§2.3):

1. :mod:`repro.core.spec` / the frontend produce a :class:`GemmSpec`;
2. :mod:`repro.core.tile_model` picks tile sizes analytically (§3.1);
3. :mod:`repro.core.decomposition` tiles, binds the CPE mesh and
   strip-mines the reduced dimension (§3);
4. :mod:`repro.core.dma` derives DMA statements and arguments (§4);
5. :mod:`repro.core.rma` inserts row/column broadcasts (§5);
6. :mod:`repro.core.latency_hiding` builds the two-level software
   pipeline with loop peeling and double buffering (§6);
7. :mod:`repro.core.fusion` handles the DL prologue/epilogue patterns
   (§7.3);
8. :mod:`repro.core.lowering` + :mod:`repro.poly.astgen` scan the final
   schedule tree into the AST that both the athread-C printer and the
   simulator-backed interpreter consume (§7).

Public entry point: :class:`repro.core.pipeline.GemmCompiler` — a thin
facade over the instrumented pass pipeline of :mod:`repro.core.passes`
(per-pass timings, IR snapshots, diagnostics, disable/replace hooks).
"""

from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.core.pipeline import GemmCompiler
from repro.core.passes import (
    CompileContext,
    Pass,
    PassManager,
    build_pipeline,
    pipeline_identity,
    reconcile_options,
)
from repro.core.diagnostics import PassDiagnostic, PassStat

__all__ = [
    "CompilerOptions",
    "GemmSpec",
    "GemmCompiler",
    "CompileContext",
    "Pass",
    "PassManager",
    "PassDiagnostic",
    "PassStat",
    "build_pipeline",
    "pipeline_identity",
    "reconcile_options",
]
