"""The instrumented pass-manager pipeline (§2.3 and §§3-7).

The paper's compiler is explicitly staged — dependence analysis, tile
selection, compute decomposition (§3), DMA derivation (§4), RMA
insertion (§5), latency hiding (§6), code generation (§7) — and this
module makes that staging a first-class, inspectable object instead of
one opaque ``compile`` function:

* a :class:`Pass` has a ``name``, the paper ``section`` it reproduces,
  and a ``run(ctx)`` over a shared mutable :class:`CompileContext`;
* :func:`build_pipeline` assembles the *variant-aware* pass list — the
  batched, fused, no-RMA and no-latency-hiding variants are pipeline
  edits (extra or swapped passes), not branches buried inside passes;
* :class:`PassManager` executes the list with per-pass wall time, a
  schedule-tree/IR snapshot after every pass (the print-after-all
  introspection production polyhedral compilers like PPCG expose), and
  structured :class:`~repro.core.diagnostics.PassDiagnostic` records;
* :func:`pipeline_identity` hashes the pass list so the compilation
  service's cache keys change whenever the pipeline changes.

Disabling a pass is an *options rewrite* followed by a pipeline rebuild:
``--disable-pass latency-hiding`` yields exactly the compiler the §8.1
no-hiding ablation uses, bit for bit, because both construct the same
effective option set and therefore the same pipeline.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CompilationError, CompileTimeout, ConfigurationError
from repro.core.decomposition import (
    Decomposition,
    _check_parallelism,
    decompose,
)
from repro.core.diagnostics import PassDiagnostic, PassStat
from repro.core.dma import DmaSpec, derive_dma_specs
from repro.core.latency_hiding import insert_communication
from repro.core.lowering import MICRO_KERNEL_MARK, GemmLowering
from repro.core.options import (
    ELEMENTWISE_FUNCS,
    SCHEDULE_PASS_NAMES,
    CompilerOptions,
    SchedulePolicy,
)
from repro.core.rma import RmaSpec, derive_rma_specs
from repro.core.spec import GemmSpec
from repro.core.tile_model import TilePlan, plan_for_kernel
from repro.codegen.backend import resolve_kernel
from repro.poly.affine import aff_const, aff_var
from repro.poly.astgen import AstGenerator
from repro.poly.astnodes import BufferDecl, CpeProgram, ReplyDecl, walk_stmts
from repro.poly.dependences import DependenceSummary, analyze_statement
from repro.poly.schedule_tree import parent_map
from repro.poly.transforms import insert_mark
from repro.sunway.arch import ArchSpec

#: Bump to invalidate every pipeline identity (and with it every service
#: cache key) when the pass contract itself changes shape.
PIPELINE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Option reconciliation (spec-driven variant selection)
# ---------------------------------------------------------------------------


def reconcile_options(
    spec: GemmSpec,
    options: CompilerOptions,
    arch: Optional["ArchSpec"] = None,
) -> CompilerOptions:
    """The canonical option set for ``(spec, options)``.

    The spec is authoritative for everything it states: a batched spec
    requires the ``--batch`` flag, fusion follows the spec's
    prologue/epilogue functions, and knobs that cannot affect the
    generated code (an unused fusion function, a batch flag without a
    batch dimension) are normalised away.  The result is what the
    pipeline compiles with, what lands on the compiled program, **and**
    what the service hashes into its cache key — so two requests that
    can only ever produce the same kernel share one artifact, and
    requests that differ (fused vs unfused specs) never collide.

    With ``arch`` supplied, the tile configuration is normalised too: a
    config pinning exactly the arch's analytical default collapses to
    ``tile_config=None``, and redundant pipeline knobs (a
    ``buffer_depth``/``k_strip`` equal to what the options/arch already
    derive) are cleared — so an autotuned point that happens to restate
    the defaults addresses the same artifact as a plain request.  An
    arch without an RMA fabric also clears ``enable_rma`` (on SW26010
    the flag cannot select any code path), so default requests compile
    on every registered arch.
    """
    if spec.is_batched and not options.batch:
        raise CompilationError(
            "batched input requires the --batch compiler option"
        )
    if not spec.is_batched and options.batch:
        # The batch flag is inert without a batch dimension.
        options = options.with_(batch=False)

    if spec.prologue_func:
        if (
            options.fusion != "prologue"
            or options.prologue_func != spec.prologue_func
        ):
            options = options.with_(
                fusion="prologue", prologue_func=spec.prologue_func
            )
    elif options.fusion == "prologue":
        raise CompilationError("prologue fusion requested but spec has none")

    if spec.epilogue_func:
        if (
            options.fusion != "epilogue"
            or options.epilogue_func != spec.epilogue_func
        ):
            options = options.with_(
                fusion="epilogue", epilogue_func=spec.epilogue_func
            )
    elif options.fusion == "epilogue":
        raise CompilationError("epilogue fusion requested but spec has none")

    # Normalise the unused fusion function slots to their defaults: the
    # lowering reads the *spec's* functions, so these cannot change the
    # generated code and must not fragment the cache.
    defaults = CompilerOptions()
    if options.fusion != "prologue" and options.prologue_func != defaults.prologue_func:
        options = options.with_(prologue_func=defaults.prologue_func)
    if options.fusion != "epilogue" and options.epilogue_func != defaults.epilogue_func:
        options = options.with_(epilogue_func=defaults.epilogue_func)

    # The kernel backend only matters on the assembly path (the scalar
    # variant models swgcc's naive loop nest — no generator involved),
    # and "vendor" restates the default — both collapse to None so
    # kernel-identical requests share one artifact.
    if options.kernel_backend is not None and (
        not options.use_asm or options.kernel_backend == "vendor"
    ):
        options = options.with_(kernel_backend=None)

    if arch is not None and options.enable_rma and not arch.rma_supported:
        options = options.with_(enable_rma=False)

    cfg = options.tile_config
    if cfg is not None:
        # An explicit single-buffer depth overrides latency hiding (it is
        # the more specific tuner knob); an explicit depth of 2 without
        # hiding has no pipeline to feed, so it is derived away.
        if cfg.buffer_depth == 1 and options.enable_latency_hiding:
            options = options.with_(enable_latency_hiding=False)
        if cfg.buffer_depth is not None:
            # Once hiding is resolved the depth is fully derived (2 with
            # hiding, else 1), so the explicit field is always redundant.
            cfg = replace(cfg, buffer_depth=None)
        if arch is not None:
            derived_strip = (
                arch.mesh_rows
                if options.enable_rma and arch.rma_supported
                else 1
            )
            if cfg.k_strip == derived_strip:
                cfg = replace(cfg, k_strip=None)
            if cfg.is_default_for(arch):
                cfg = None
        if cfg is not options.tile_config:
            options = options.with_(tile_config=cfg)

    # The structured schedule policy is canonicalised last, once the
    # legacy hiding bit has settled: "off" folds into that bit, "recipe"
    # restates the default, and an "optimize" that cannot run (no
    # pipeline to rewrite, or an empty pass set) collapses too — so
    # every spelling of the same pipeline shares one cache key, and a
    # surviving policy pins its resolved pass tuple explicitly.
    policy = options.schedule
    if policy is not None:
        if policy.mode == "off":
            options = options.with_(enable_latency_hiding=False, schedule=None)
        elif policy.mode == "recipe":
            options = options.with_(schedule=None)
        elif not options.enable_latency_hiding or not policy.pass_names():
            options = options.with_(schedule=None)
        else:
            canonical = SchedulePolicy(
                mode="optimize", allow=policy.pass_names()
            )
            if canonical != policy:
                options = options.with_(schedule=canonical)
    return options


# ---------------------------------------------------------------------------
# The shared compilation state
# ---------------------------------------------------------------------------


@dataclass
class CompileContext:
    """Mutable state threaded through the pass pipeline.

    Passes read what earlier passes produced and publish their own
    results here; the manager records a snapshot of this context after
    every pass.
    """

    spec: GemmSpec
    arch: ArchSpec
    options: CompilerOptions

    summary: Optional[DependenceSummary] = None
    plan: Optional[TilePlan] = None
    decomposition: Optional[Decomposition] = None
    dma_specs: Optional[Dict[str, DmaSpec]] = None
    rma_specs: Optional[Dict[str, RmaSpec]] = None
    cpe_program: Optional[CpeProgram] = None
    #: the admission verifier's report (repro.verify.VerificationReport)
    verification: Optional[object] = None
    #: deterministic dump of the post-rewrite timeline (set by the
    #: schedule rewrite passes; None on recipe pipelines keeps their
    #: snapshots byte-identical to before the schedule IR existed)
    schedule_timeline: Optional[str] = None

    diagnostics: List[PassDiagnostic] = field(default_factory=list)
    stats: List[PassStat] = field(default_factory=list)
    #: pass name -> IR snapshot taken right after the pass ran
    snapshots: Dict[str, str] = field(default_factory=dict)
    current_pass: str = "<pipeline>"

    # -- diagnostics -------------------------------------------------------

    def diag(self, category: str, message: str) -> None:
        self.diagnostics.append(
            PassDiagnostic(self.current_pass, category, message)
        )

    def info(self, message: str) -> None:
        self.diag("info", message)

    def decide(self, message: str) -> None:
        self.diag("decision", message)

    def warn(self, message: str) -> None:
        self.diag("warning", message)

    def require(self, value, what: str):
        """Fetch a prerequisite produced by an earlier pass, loudly."""
        if value is None:
            raise CompilationError(
                f"pass {self.current_pass!r} requires {what}, which no "
                "earlier pass produced — the pipeline is mis-ordered"
            )
        return value

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> str:
        """Deterministic text rendering of the context state.

        The header lists every intermediate artifact present so far; the
        body is the schedule tree (the same printer the golden
        ``schedule_tree_full.txt`` locks down) once it exists.
        """
        spec = self.spec
        options = self.options
        lines = [
            f"spec: {spec.stmt_name} "
            f"{'batched ' if spec.is_batched else ''}{spec.dtype} "
            f"C={spec.c_name} A={spec.a_name}{'^T' if spec.trans_a else ''} "
            f"B={spec.b_name}{'^T' if spec.trans_b else ''}"
            + (f" prologue={spec.prologue_func}" if spec.prologue_func else "")
            + (f" epilogue={spec.epilogue_func}" if spec.epilogue_func else ""),
            f"options: variant={options.variant_name()} fusion={options.fusion} "
            f"batch={options.batch} use_asm={options.use_asm} "
            f"rma={options.enable_rma} hiding={options.enable_latency_hiding}",
            f"arch: {self.arch.name}",
        ]
        if self.summary is not None:
            parallel = [
                d for d, c in zip(self.summary.loop_dims, self.summary.coincident)
                if c
            ]
            lines.append(
                "dependences: parallel=[" + ",".join(parallel) + "] "
                f"permutable={self.summary.permutable} "
                "reductions=[" + ",".join(self.summary.reduction_dims) + "]"
            )
        if self.plan is not None:
            plan = self.plan
            lines.append(
                f"plan: tile={plan.mt}x{plan.nt}x{plan.kt} "
                f"chunk={plan.chunk_m}x{plan.chunk_n}x{plan.k_step} "
                f"rma={plan.use_rma} double_buffered={plan.double_buffered} "
                f"buffers=[{','.join(b.name for b in plan.buffers)}] "
                f"spm_bytes={plan.spm_bytes()}"
            )
        if self.dma_specs is not None:
            lines.append(
                "dma: "
                + " ".join(
                    f"{name}({spec.rows}x{spec.cols} {spec.direction} "
                    f"{spec.array}->{spec.buffer})"
                    if spec.direction == "get"
                    else f"{name}({spec.rows}x{spec.cols} {spec.direction} "
                    f"{spec.buffer}->{spec.array})"
                    for name, spec in self.dma_specs.items()
                )
            )
        if self.rma_specs is not None:
            lines.append(
                "rma: "
                + " ".join(
                    f"{name}({spec.kind}-bcast {spec.matrix} "
                    f"size={spec.size} owner={spec.owner_var})"
                    for name, spec in self.rma_specs.items()
                )
            )
        if self.cpe_program is not None:
            program = self.cpe_program
            lines.append(
                f"ast: kernel={program.kernel_name} "
                f"buffers={len(program.buffers)} replies={len(program.replies)} "
                f"statements={sum(1 for _ in walk_stmts(program.body))}"
            )
        if self.verification is not None:
            lines.append(f"verification: {self.verification.summary()}")
        tree = (
            self.decomposition.root.dump()
            if self.decomposition is not None
            else "<no schedule tree yet>"
        )
        timeline = (
            "\n--- schedule timeline ---\n" + self.schedule_timeline.rstrip("\n")
            if self.schedule_timeline
            else ""
        )
        return (
            "\n".join(lines)
            + timeline
            + "\n--- schedule tree ---\n"
            + tree
            + "\n"
        )


# ---------------------------------------------------------------------------
# The Pass protocol and the concrete passes
# ---------------------------------------------------------------------------


class Pass:
    """One stage of the compiler, mapped to the paper section it
    reproduces."""

    #: Stable identifier, used by ``--disable-pass`` / ``--print-after``.
    name: str = "<unnamed>"
    #: Paper section ("§3", "§4", ...).
    section: str = "§?"
    #: One-line description shown by ``swgemm passes list``.
    summary: str = ""

    def run(self, ctx: CompileContext) -> None:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Identity of the implementation, hashed into the pipeline id.

        Replacing a pass with a subclass (or a differently-parameterised
        instance) must change the id, so the default covers the concrete
        class; parameterised passes extend it.
        """
        cls = type(self)
        return f"{cls.__module__}.{cls.__qualname__}"


class DependenceAnalysisPass(Pass):
    name = "dependence-analysis"
    section = "§2.2"
    summary = "prove the outer loops parallel and the band permutable"

    def run(self, ctx: CompileContext) -> None:
        spec = ctx.spec
        summary = analyze_statement(
            spec.domain(), spec.accesses(), spec.loop_dims()
        )
        _check_parallelism(spec, summary)
        ctx.summary = summary
        parallel = [
            d for d, c in zip(summary.loop_dims, summary.coincident) if c
        ]
        ctx.decide(
            f"loops {','.join(parallel)} proven parallel; "
            f"reduction over {','.join(summary.reduction_dims) or 'none'}; "
            f"band permutable={summary.permutable}"
        )


class TileSelectionPass(Pass):
    name = "tile-selection"
    section = "§3.1"
    summary = "analytical tile sizes and the SPM buffer plan"

    def run(self, ctx: CompileContext) -> None:
        spec, options = ctx.spec, ctx.options
        plan = plan_for_kernel(
            ctx.arch,
            options,
            trans_a=spec.trans_a,
            trans_b=spec.trans_b,
            itemsize=spec.itemsize,
        )
        ctx.plan = plan
        ctx.decide(
            f"micro-kernel tile {plan.mt}x{plan.nt}x{plan.kt}, "
            f"mesh chunk {plan.chunk_m}x{plan.chunk_n}x{plan.k_step}, "
            f"{len(plan.buffers)} SPM buffers ({plan.spm_bytes()} B)"
        )
        if plan.use_rma:
            ctx.decide(
                f"RMA broadcasts enabled: each DMA'd tile is reused "
                f"{plan.mesh}x across its mesh row/column"
            )
        else:
            ctx.decide(
                "RMA disabled: every CPE fetches its own tiles from main "
                "memory (options.enable_rma="
                f"{options.enable_rma}, arch rma={ctx.arch.rma_supported})"
            )
        ctx.decide(
            "double buffering "
            + ("enabled (two slots per input buffer)" if plan.double_buffered
               else "disabled (single slot per buffer)")
        )


class ComputeDecompositionPass(Pass):
    name = "compute-decomposition"
    section = "§3"
    summary = "tile, bind the CPE mesh and strip-mine the reduction"

    def run(self, ctx: CompileContext) -> None:
        plan = ctx.require(ctx.plan, "a tile plan")
        summary = ctx.require(ctx.summary, "a dependence summary")
        dec = decompose(ctx.spec, plan, ctx.options, arch=ctx.arch,
                        summary=summary)
        ctx.decomposition = dec
        ctx.decide("bands: " + ", ".join(dec.bands))
        ctx.info(
            "reconstruction map covers "
            + ",".join(sorted(dec.reconstruction))
        )


class BatchIsolationPass(Pass):
    name = "batch-isolation"
    section = "§3/Fig. 3"
    summary = "verify the isolated, never-decomposed batch band"

    def run(self, ctx: CompileContext) -> None:
        dec = ctx.require(ctx.decomposition, "a decomposition")
        band = dec.bands.get("batch")
        if band is None:
            raise CompilationError(
                "batched spec but the decomposition has no batch band"
            )
        if band.permutable:
            raise CompilationError(
                "the batch band must not be permutable (it is never tiled)"
            )
        if dec.root.children[0] is not band:
            raise CompilationError(
                "the batch band must be outermost so the mesh is spawned "
                "only once (§8.3)"
            )
        ctx.decide(
            f"batch dimension {ctx.spec.batch_param!r} isolated outermost: "
            "each CPE iterates the batch sequentially, one mesh spawn total"
        )


class DmaDerivationPass(Pass):
    name = "dma-derivation"
    section = "§4"
    summary = "derive dma_iget/dma_iput argument lists from footprints"

    def run(self, ctx: CompileContext) -> None:
        dec = ctx.require(ctx.decomposition, "a decomposition")
        specs = derive_dma_specs(dec)
        ctx.dma_specs = specs
        for name, spec in specs.items():
            ctx.info(
                f"{name}: {spec.direction} {spec.array} "
                f"{spec.rows}x{spec.cols} via {spec.buffer} "
                f"(reply {spec.reply})"
            )


class RmaDerivationPass(Pass):
    name = "rma-derivation"
    section = "§5"
    summary = "row/column broadcast specs for SPM-to-SPM sharing"

    def run(self, ctx: CompileContext) -> None:
        dec = ctx.require(ctx.decomposition, "a decomposition")
        specs = derive_rma_specs(dec)
        ctx.rma_specs = specs
        for name, spec in specs.items():
            ctx.info(
                f"{name}: {spec.kind} broadcast of {spec.matrix} "
                f"({spec.size} elements, owner {spec.owner_var})"
            )


class _FusionPass(Pass):
    """Shared validation for the §7.3 post-tiling fusion patterns."""

    kind = "<fusion>"

    def _func(self, ctx: CompileContext) -> str:
        raise NotImplementedError

    def run(self, ctx: CompileContext) -> None:
        func = self._func(ctx)
        if func not in ELEMENTWISE_FUNCS:
            raise CompilationError(
                f"unknown {self.kind} function {func!r}; expected one of "
                f"{ELEMENTWISE_FUNCS}"
            )
        if ctx.options.fusion != self.kind:
            raise CompilationError(
                f"spec requests {self.kind} fusion but the reconciled "
                f"options say {ctx.options.fusion!r}"
            )


class PrologueFusionPass(_FusionPass):
    name = "prologue-fusion"
    section = "§7.3"
    summary = "fuse an element-wise prologue over freshly DMA'd A tiles"
    kind = "prologue"

    def _func(self, ctx: CompileContext) -> str:
        return ctx.spec.prologue_func or ""

    def run(self, ctx: CompileContext) -> None:
        super().run(ctx)
        ctx.decide(
            f"prologue {ctx.spec.prologue_func!r} will run on each A tile "
            "after its DMA wait (recomputed per fetch, Fig. 12a)"
        )


class EpilogueFusionPass(_FusionPass):
    name = "epilogue-fusion"
    section = "§7.3"
    summary = "fuse an element-wise epilogue over finished C tiles"
    kind = "epilogue"

    def _func(self, ctx: CompileContext) -> str:
        return ctx.spec.epilogue_func or ""

    def run(self, ctx: CompileContext) -> None:
        super().run(ctx)
        ctx.decide(
            f"epilogue {ctx.spec.epilogue_func!r} will run on each C tile "
            "before its put-back (Fig. 12b)"
        )


class MicroKernelMarkPass(Pass):
    name = "micro-kernel-mark"
    section = "§7.2"
    summary = "wrap the point band in the micro-kernel mark node"

    def run(self, ctx: CompileContext) -> None:
        dec = ctx.require(ctx.decomposition, "a decomposition")
        plan = dec.plan
        point = dec.bands["point"]
        parents = parent_map(dec.root)
        parent = parents.get(id(point))
        if parent is None:
            raise CompilationError("point band has no parent")
        if plan.use_rma:
            a_buffer, b_buffer = "local_A_bc", "local_B_bc"
            slot = aff_var("km").mod(2) if plan.double_buffered else aff_const(0)
        else:
            a_buffer, b_buffer = "local_A_dma", "local_B_dma"
            slot = aff_var("ktile").mod(2) if plan.double_buffered else aff_const(0)
        insert_mark(
            parent,
            point,
            MICRO_KERNEL_MARK,
            payload={
                "a_buffer": a_buffer,
                "a_slot": slot,
                "b_buffer": b_buffer,
                "b_slot": slot,
            },
        )
        kernel = resolve_kernel(ctx.arch, ctx.options, plan.kernel_shape)
        ctx.decide(
            f"point band marked for kernel {kernel.name} "
            f"(inputs {a_buffer}/{b_buffer})"
        )


class _CommunicationPass(Pass):
    """Base for the two communication-scheduling variants (§§4-6)."""

    def run(self, ctx: CompileContext) -> None:
        dec = ctx.require(ctx.decomposition, "a decomposition")
        dma_specs = ctx.require(ctx.dma_specs, "DMA specs")
        if dec.plan.use_rma:
            ctx.require(ctx.rma_specs, "RMA specs")
        insert_communication(dec, dma_specs, ctx.rma_specs)


class LatencyHidingPass(_CommunicationPass):
    name = "latency-hiding"
    section = "§6"
    summary = "two-level software pipeline: peel loops, double buffer"

    def run(self, ctx: CompileContext) -> None:
        plan = ctx.require(ctx.plan, "a tile plan")
        if not plan.double_buffered:
            raise CompilationError(
                "latency-hiding pass scheduled for a single-buffered plan; "
                "the pipeline builder should have used communication-schedule"
            )
        super().run(ctx)
        levels = "DMA prefetch behind the inner pipeline" + (
            "; RMA broadcast behind the micro kernel" if plan.use_rma else ""
        )
        ctx.decide(f"issue-ahead pipelining inserted ({levels})")


class CommunicationSchedulePass(_CommunicationPass):
    name = "communication-schedule"
    section = "§6/Fig. 9"
    summary = "schedule each transfer with its wait (no hiding)"

    def run(self, ctx: CompileContext) -> None:
        plan = ctx.require(ctx.plan, "a tile plan")
        if plan.double_buffered:
            raise CompilationError(
                "communication-schedule pass scheduled for a double-buffered "
                "plan; the pipeline builder should have used latency-hiding"
            )
        super().run(ctx)
        ctx.decide(
            "no latency hiding: every issue is scheduled together with its "
            "wait (the Fig. 9 grouping)"
        )


class ScheduleRewritePass(Pass):
    """One schedule rewrite from :mod:`repro.schedule`, run as a
    first-class pipeline pass (``--schedule=optimize`` schedules one of
    these per allowed rewrite, in policy order).

    The rewrite mutates a clone of the schedule tree, which is lowered,
    replayed on the verifier's ``ScheduleMachine`` and re-checked
    against the SPM budget before it replaces ``dec.root`` — an
    unproven candidate is dropped and the pass records why.  The
    rewrite name is part of the pass name (``schedule:<rewrite>``) and
    fingerprint, so pass sets and their order flow into the pipeline
    identity and hence the service cache keys.
    """

    section = "§6+"

    def __init__(self, rewrite: str) -> None:
        # Imported lazily to keep this module importable while
        # repro.schedule is mid-import (it lazily imports our helpers).
        from repro.schedule import REWRITES

        if rewrite not in REWRITES:
            raise ConfigurationError(
                f"unknown schedule rewrite {rewrite!r}; known: "
                f"{', '.join(REWRITES)}"
            )
        self.rewrite = rewrite
        self.name = f"schedule:{rewrite}"
        self.summary = REWRITES[rewrite].summary

    def run(self, ctx: CompileContext) -> None:
        from repro.schedule import apply_rewrite, extract_timeline
        from repro.schedule.passes import bubble_occupancy

        dec = ctx.require(ctx.decomposition, "a decomposition")
        dma_specs = ctx.require(ctx.dma_specs, "DMA specs")
        outcome = apply_rewrite(
            dec, self.rewrite, dma_specs, ctx.rma_specs, ctx.arch
        )
        if outcome.applied:
            ctx.decide(
                f"{self.rewrite}: applied — candidate replayed on the "
                "schedule machine and SPM slack re-checked"
            )
            bubble = bubble_occupancy(dec, outcome.cpe_program, ctx.arch)
            ctx.info(
                f"bubble occupancy after {self.rewrite}: {bubble:.2%} "
                "(one chunk, K=2·k_step)"
            )
        else:
            ctx.info(f"{self.rewrite}: not applied — {outcome.reason}")
        ctx.schedule_timeline = extract_timeline(dec.root).dump()

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}[{self.rewrite}]"


class AstGenerationPass(Pass):
    name = "ast-generation"
    section = "§7"
    summary = "scan the schedule tree into the CPE athread AST"

    def run(self, ctx: CompileContext) -> None:
        dec = ctx.require(ctx.decomposition, "a decomposition")
        dma_specs = ctx.require(ctx.dma_specs, "DMA specs")
        lowering = GemmLowering(dec)
        generator = AstGenerator(lowering)
        body = generator.generate(dec.root, ctx.spec.param_names())
        ctx.cpe_program = CpeProgram(
            buffers=_buffer_decls(dec),
            replies=_reply_decls(dec, dma_specs, ctx.rma_specs),
            body=body,
            kernel_name=resolve_kernel(
                ctx.arch, ctx.options, dec.plan.kernel_shape
            ).name,
        )
        ctx.info(
            f"{sum(1 for _ in walk_stmts(body))} AST statements, "
            f"{len(ctx.cpe_program.buffers)} buffer and "
            f"{len(ctx.cpe_program.replies)} reply declarations"
        )


class VerificationPass(Pass):
    """Terminal admission gate: the static kernel-safety verifier.

    Runs the four checks of :mod:`repro.verify` over the lowered program
    and attaches the resulting report to the context; a failing report
    aborts compilation with a structured :class:`KernelAdmissionError`
    naming the witness, so no unproven kernel ever leaves the pipeline.
    """

    name = "verify"
    section = "§4-§6"
    summary = "prove SPM budget, DMA bounds, hazard and RMA safety"

    def run(self, ctx: CompileContext) -> None:
        # Imported lazily: repro.verify sits above the core layer.
        from repro.verify import admit, run_checks

        report = run_checks(
            spec=ctx.spec,
            arch=ctx.arch,
            options=ctx.options,
            plan=ctx.require(ctx.plan, "a tile plan"),
            dma_specs=ctx.require(ctx.dma_specs, "DMA specs"),
            rma_specs=ctx.rma_specs,
            cpe_program=ctx.require(ctx.cpe_program, "the CPE AST"),
        )
        ctx.verification = report
        for check in report.checks:
            ctx.diag(
                "verify",
                f"{check.name}: {check.status}"
                + (f" — {check.detail}" if check.detail else ""),
            )
        admit(report)


def _buffer_decls(dec: Decomposition) -> List[BufferDecl]:
    ctype = "double" if dec.spec.dtype == "float64" else "float"
    return [BufferDecl(b.name, b.shape, ctype) for b in dec.plan.buffers]


def _reply_decls(dec, dma_specs, rma_specs) -> List[ReplyDecl]:
    slots = 2 if dec.plan.double_buffered else 1
    decls: Dict[str, ReplyDecl] = {}
    for spec in dma_specs.values():
        count = slots if spec.reply not in ("get_replyC", "put_replyC") else 1
        decls[spec.reply] = ReplyDecl(spec.reply, count)
    if rma_specs:
        for spec in rma_specs.values():
            decls[spec.replys] = ReplyDecl(spec.replys, slots)
            decls[spec.replyr] = ReplyDecl(spec.replyr, slots)
    return list(decls.values())


# ---------------------------------------------------------------------------
# Pipeline construction
# ---------------------------------------------------------------------------

#: ``--disable-pass`` is an options rewrite + rebuild, which is what makes
#: the disabled pipeline *identical* to the corresponding §8.1 ablation.
DISABLE_REWRITES: Dict[str, Dict[str, object]] = {
    LatencyHidingPass.name: {"enable_latency_hiding": False},
    RmaDerivationPass.name: {"enable_rma": False},
    VerificationPass.name: {"verify": False},
}


def apply_disabled_passes(
    options: CompilerOptions, disabled: Sequence[str]
) -> CompilerOptions:
    """Rewrite ``options`` so the default pipeline omits each pass."""
    for name in disabled:
        if name.startswith("schedule:"):
            rewrite_name = name.split(":", 1)[1]
            if rewrite_name not in SCHEDULE_PASS_NAMES:
                raise ConfigurationError(
                    f"unknown schedule rewrite {rewrite_name!r}; known: "
                    f"{', '.join(SCHEDULE_PASS_NAMES)}"
                )
            policy = options.schedule
            if policy is not None and policy.mode == "optimize":
                deny = tuple(dict.fromkeys(policy.deny + (rewrite_name,)))
                options = options.with_(
                    schedule=SchedulePolicy(
                        mode="optimize", allow=policy.allow, deny=deny
                    )
                )
            # Without an optimize policy the pass is not scheduled at
            # all — disabling it is already satisfied.
            continue
        rewrite = DISABLE_REWRITES.get(name)
        if rewrite is None:
            raise ConfigurationError(
                f"pass {name!r} cannot be disabled; disableable passes: "
                f"{sorted(DISABLE_REWRITES)} and schedule:<rewrite>"
            )
        options = options.with_(**rewrite)
    return options


def build_pipeline(
    spec: GemmSpec,
    arch: ArchSpec,
    options: CompilerOptions,
    replacements: Optional[Mapping[str, Pass]] = None,
) -> List[Pass]:
    """The variant-aware default pipeline for one reconciled request.

    ``replacements`` substitutes a custom :class:`Pass` instance for the
    named default (the replacement's fingerprint enters the pipeline
    identity, and hence the service cache key).
    """
    passes: List[Pass] = [
        DependenceAnalysisPass(),
        TileSelectionPass(),
        ComputeDecompositionPass(),
    ]
    if spec.is_batched:
        passes.append(BatchIsolationPass())
    passes.append(DmaDerivationPass())
    if options.enable_rma and arch.rma_supported:
        passes.append(RmaDerivationPass())
    if spec.prologue_func:
        passes.append(PrologueFusionPass())
    if spec.epilogue_func:
        passes.append(EpilogueFusionPass())
    passes.append(MicroKernelMarkPass())
    if options.enable_latency_hiding:
        passes.append(LatencyHidingPass())
        if options.schedule is not None and options.schedule.mode == "optimize":
            for rewrite in options.schedule.pass_names():
                passes.append(ScheduleRewritePass(rewrite))
    else:
        passes.append(CommunicationSchedulePass())
    passes.append(AstGenerationPass())
    if options.verify:
        passes.append(VerificationPass())

    if replacements:
        by_name = {p.name: i for i, p in enumerate(passes)}
        for name, replacement in replacements.items():
            if name not in by_name:
                raise ConfigurationError(
                    f"cannot replace unknown pass {name!r}; pipeline has "
                    f"{[p.name for p in passes]}"
                )
            passes[by_name[name]] = replacement
    return passes


def pipeline_identity(passes: Sequence[Pass]) -> str:
    """Stable short hash of a pass list (names, sections, implementations).

    Editing the pipeline — disabling, replacing, reordering or adding a
    pass — changes this identity, which the service folds into its cache
    keys so stale artifacts can never be served for a different pipeline.
    """
    payload = {
        "schema": PIPELINE_SCHEMA_VERSION,
        "passes": [
            [p.name, p.section, p.fingerprint()] for p in passes
        ],
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------

#: Sink for --print-after style introspection: (pass, header, snapshot).
SnapshotSink = Callable[[Pass, str, str], None]


class PassManager:
    """Executes a pipeline over a context with timing, snapshots and
    print-after hooks."""

    def __init__(
        self,
        passes: Sequence[Pass],
        print_after: Optional[Sequence[str]] = None,
        sink: Optional[SnapshotSink] = None,
        capture_snapshots: bool = True,
    ) -> None:
        self.passes = list(passes)
        self.capture_snapshots = capture_snapshots
        self.sink = sink
        names = [p.name for p in self.passes]
        if print_after is None:
            self.print_after: Tuple[str, ...] = ()
        elif "all" in print_after:
            self.print_after = tuple(names)
        else:
            unknown = [n for n in print_after if n not in names]
            if unknown:
                raise ConfigurationError(
                    f"--print-after: unknown pass(es) {unknown}; "
                    f"this pipeline has {names}"
                )
            self.print_after = tuple(print_after)

    def identity(self) -> str:
        return pipeline_identity(self.passes)

    def run(
        self, ctx: CompileContext, deadline: Optional[float] = None
    ) -> CompileContext:
        """Run the pipeline; ``deadline`` is an absolute
        ``time.monotonic()`` instant past which compilation aborts with
        a structured :class:`CompileTimeout` (checked between passes —
        individual passes are short, so the wall-time overshoot is
        bounded by one pass)."""
        total = len(self.passes)
        for index, pass_ in enumerate(self.passes, start=1):
            if deadline is not None and time.monotonic() >= deadline:
                raise CompileTimeout(
                    f"compile deadline exceeded before pass {index}/{total} "
                    f"({pass_.name!r})"
                )
            ctx.current_pass = pass_.name
            before = len(ctx.diagnostics)
            started = time.perf_counter()
            pass_.run(ctx)
            elapsed = time.perf_counter() - started
            ctx.stats.append(
                PassStat(
                    name=pass_.name,
                    section=pass_.section,
                    seconds=elapsed,
                    diagnostics=tuple(ctx.diagnostics[before:]),
                )
            )
            if self.capture_snapshots or pass_.name in self.print_after:
                snapshot = ctx.snapshot()
                if self.capture_snapshots:
                    ctx.snapshots[pass_.name] = snapshot
                if pass_.name in self.print_after and self.sink is not None:
                    header = (
                        f";; ---- IR after {index}/{total}: {pass_.name} "
                        f"({pass_.section}) ----"
                    )
                    self.sink(pass_, header, snapshot)
        ctx.current_pass = "<pipeline>"
        return ctx
