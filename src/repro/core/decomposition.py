"""Compute decomposition (§3).

Breaks the GEMM loop nest down so that (1) the 8×8 CPE mesh works on
independent blocks in parallel and (2) each block matches the micro-kernel
shape:

1. run the dependence analysis to establish that the outer two loops are
   parallel and the band is tilable (what isl's scheduler annotates,
   §2.2) — inputs that fail this check are rejected;
2. isolate the batch dimension of batched GEMM (Fig. 3) — it is never
   decomposed, so a CPE iterates the batch sequentially and the mesh is
   started only once (§8.3);
3. tile all three dimensions by the micro-kernel shape — the arch's
   contract (64×64×32 on the paper's SW26010Pro target, Fig. 4a), or
   whatever shape the tile plan carries for a tuned/generated kernel;
4. bind the tile loops to the mesh: ``Rid = ⌊i/mt⌋ mod mesh``,
   ``Cid = ⌊j/nt⌋ mod mesh`` (Fig. 4b — ``⌊i/64⌋ mod 8`` on the default
   target), with *chunk* loops ``ic``, ``jc`` iterating the
   ``(mesh·mt)×(mesh·nt)×(mesh·kt)`` blocks a full mesh pass covers
   (512×512×256 by default, §4);
5. strip-mine the reduced tile loop by the mesh size (Fig. 6), which
   assigns each CPE one k-slice per outer iteration and sets up the RMA
   sharing of §5.  Without RMA (the breakdown's first two variants) the
   k tile loop is left un-mined and every CPE fetches its own tiles.

The pass also records the *reconstruction map* — each original iterator
as a quasi-affine expression of the new loop variables — which §4's DMA
argument derivation consumes (it is the polyhedral content of Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompilationError
from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.core.tile_model import TilePlan
from repro.sunway.arch import ArchSpec
from repro.poly.affine import AffExpr, aff_const, aff_var
from repro.poly.dependences import DependenceSummary, analyze_statement
from repro.poly.schedule_tree import (
    BandMember,
    BandNode,
    DomainNode,
    ScheduleNode,
)


@dataclass
class Decomposition:
    """Result of the decomposition pass."""

    root: DomainNode
    spec: GemmSpec
    plan: TilePlan
    options: CompilerOptions
    summary: DependenceSummary
    #: original statement dim -> expression over the new loop variables
    reconstruction: Dict[str, AffExpr] = field(default_factory=dict)
    #: named bands for later surgery
    bands: Dict[str, BandNode] = field(default_factory=dict)
    #: target architecture — used by the lowering for kernel naming/cost.
    #: ``None`` only for decompositions built outside the compiler facade
    #: (the lowering rejects those loudly).
    arch: Optional[ArchSpec] = None

    @property
    def stmt(self) -> str:
        return self.spec.stmt_name

    def loop_var_names(self) -> List[str]:
        names: List[str] = []
        for band in self.bands.values():
            names.extend(band.member_vars())
        return names


def _check_parallelism(spec: GemmSpec, summary: DependenceSummary) -> None:
    """The §2.2 prerequisites: outer two GEMM loops parallel, band tilable."""
    dims = summary.loop_dims
    by_dim = dict(zip(dims, summary.coincident))
    if not (by_dim.get("i") and by_dim.get("j")):
        raise CompilationError(
            "dependence analysis could not prove the i/j loops parallel; "
            f"carried dimensions: {summary.carried_dims()}"
        )
    if not summary.permutable:
        raise CompilationError("the loop nest is not tilable (band not permutable)")
    if spec.is_batched and not by_dim.get("b", False):
        raise CompilationError("the batch dimension carries a dependence")


def decompose(
    spec: GemmSpec,
    plan: TilePlan,
    options: CompilerOptions,
    arch: Optional[ArchSpec] = None,
    summary: Optional[DependenceSummary] = None,
) -> Decomposition:
    """Run the full §3 pass and return the decorated schedule tree.

    ``arch`` is carried on the result for the lowering's kernel naming;
    ``summary`` lets the pipeline's dependence-analysis pass feed its
    (already checked) result in instead of re-analysing.
    """
    if summary is None:
        summary = analyze_statement(
            spec.domain(), spec.accesses(), spec.loop_dims()
        )
    _check_parallelism(spec, summary)

    stmt = spec.stmt_name
    i, j, k = aff_var("i"), aff_var("j"), aff_var("k")
    M = aff_var(spec.m_param)
    N = aff_var(spec.n_param)
    K = aff_var(spec.k_param)
    mesh = plan.mesh
    mt, nt, kt = plan.mt, plan.nt, plan.kt

    bands: Dict[str, BandNode] = {}
    chain: List[BandNode] = []

    # ---- batch band (Fig. 3): isolated, never decomposed ------------------
    if spec.is_batched:
        if not options.batch:
            raise CompilationError(
                "input has a batch dimension; compile with the --batch option"
            )
        Bp = aff_var(spec.batch_param)
        batch_band = BandNode(
            [
                BandMember(
                    "b",
                    {stmt: aff_var("b")},
                    coincident=True,
                    extent=(aff_const(0), Bp),
                    binding="batch",
                )
            ],
            permutable=False,
        )
        bands["batch"] = batch_band
        chain.append(batch_band)

    # ---- chunk loops: blocks of chunk_m × chunk_n per mesh pass -----------
    chunk_band = BandNode(
        [
            BandMember(
                "ic",
                {stmt: i.floordiv(mt * mesh)},
                coincident=True,
                extent=(aff_const(0), M.floordiv(mt * mesh)),
            ),
            BandMember(
                "jc",
                {stmt: j.floordiv(nt * mesh)},
                coincident=True,
                extent=(aff_const(0), N.floordiv(nt * mesh)),
            ),
        ],
        permutable=True,
    )
    bands["chunk"] = chunk_band
    chain.append(chunk_band)

    # ---- mesh binding (Fig. 4b): Rid/Cid are spatial, not loops ------------
    mesh_band = BandNode(
        [
            BandMember(
                "Rid",
                {stmt: i.floordiv(mt) - i.floordiv(mt * mesh) * mesh},
                coincident=True,
                extent=(aff_const(0), aff_const(mesh)),
                binding="mesh_row",
            ),
            BandMember(
                "Cid",
                {stmt: j.floordiv(nt) - j.floordiv(nt * mesh) * mesh},
                coincident=True,
                extent=(aff_const(0), aff_const(mesh)),
                binding="mesh_col",
            ),
        ],
        permutable=True,
    )
    bands["mesh"] = mesh_band
    chain.append(mesh_band)

    # ---- reduced dimension -------------------------------------------------
    if plan.use_rma:
        # Strip-mined by the mesh size (Fig. 6): the outer loop walks
        # 256-element k chunks, the inner enumerates the 8 slices that the
        # RMA broadcasts share across a row/column.
        kouter = BandNode(
            [
                BandMember(
                    "ko",
                    {stmt: k.floordiv(kt * mesh)},
                    coincident=False,
                    extent=(aff_const(0), K.floordiv(kt * mesh)),
                )
            ],
            permutable=False,
        )
        kmid = BandNode(
            [
                BandMember(
                    "km",
                    {stmt: k.floordiv(kt) - k.floordiv(kt * mesh) * mesh},
                    coincident=False,
                    extent=(aff_const(0), aff_const(mesh)),
                )
            ],
            permutable=False,
        )
        bands["kouter"] = kouter
        bands["kmid"] = kmid
        chain.extend([kouter, kmid])
    else:
        ktile = BandNode(
            [
                BandMember(
                    "ktile",
                    {stmt: k.floordiv(kt)},
                    coincident=False,
                    extent=(aff_const(0), K.floordiv(kt)),
                )
            ],
            permutable=False,
        )
        bands["ktile"] = ktile
        chain.append(ktile)

    # ---- point loops (the micro-kernel body) -------------------------------
    point_band = BandNode(
        [
            BandMember(
                "ip",
                {stmt: i - i.floordiv(mt) * mt},
                coincident=True,
                extent=(aff_const(0), aff_const(mt)),
            ),
            BandMember(
                "jp",
                {stmt: j - j.floordiv(nt) * nt},
                coincident=True,
                extent=(aff_const(0), aff_const(nt)),
            ),
            BandMember(
                "kp",
                {stmt: k - k.floordiv(kt) * kt},
                coincident=False,
                extent=(aff_const(0), aff_const(kt)),
            ),
        ],
        permutable=True,
    )
    bands["point"] = point_band
    chain.append(point_band)

    # ---- link the chain under the domain node ------------------------------
    root = DomainNode({stmt: spec.domain()}, [chain[0]])
    for upper, lower in zip(chain, chain[1:]):
        upper.set_child(lower)

    # ---- reconstruction map -------------------------------------------------
    ic, jc = aff_var("ic"), aff_var("jc")
    rid, cid = aff_var("Rid"), aff_var("Cid")
    ip, jp, kp = aff_var("ip"), aff_var("jp"), aff_var("kp")
    reconstruction: Dict[str, AffExpr] = {
        "i": (ic * mesh + rid) * mt + ip,
        "j": (jc * mesh + cid) * nt + jp,
    }
    if plan.use_rma:
        reconstruction["k"] = (aff_var("ko") * mesh + aff_var("km")) * kt + kp
    else:
        reconstruction["k"] = aff_var("ktile") * kt + kp
    if spec.is_batched:
        reconstruction["b"] = aff_var("b")

    return Decomposition(
        root=root,
        spec=spec,
        plan=plan,
        options=options,
        summary=summary,
        reconstruction=reconstruction,
        bands=bands,
        arch=arch,
    )


def verify_reconstruction(
    dec: Decomposition, params: Dict[str, int], samples: int = 64
) -> None:
    """Cross-check the reconstruction map against the band schedules.

    For a sample of original iteration points, evaluating every band
    schedule and then the reconstruction must round-trip to the original
    point.  Used by the test-suite (and cheap enough to run in CI)."""
    import itertools
    import random

    rng = random.Random(0x5EED)
    spec = dec.spec
    M = params[spec.m_param]
    N = params[spec.n_param]
    K = params[spec.k_param]
    B = params.get(spec.batch_param, 1) if spec.is_batched else 1
    for _ in range(samples):
        point = {
            "i": rng.randrange(M),
            "j": rng.randrange(N),
            "k": rng.randrange(K),
        }
        if spec.is_batched:
            point["b"] = rng.randrange(B)
        env = dict(params)
        env.update(point)
        loop_env: Dict[str, int] = dict(params)
        for band in dec.bands.values():
            for member in band.members:
                loop_env[member.var] = member.schedule_for(dec.stmt).evaluate(env)
        for dim, expr in dec.reconstruction.items():
            value = expr.evaluate(loop_env)
            if value != point[dim]:
                raise CompilationError(
                    f"reconstruction mismatch for {dim}: {value} != {point[dim]} "
                    f"at {point}"
                )
