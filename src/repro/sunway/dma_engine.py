"""The DMA engine: ``dma_iget`` / ``dma_iput`` (§4).

Semantics follow the athread interface the paper documents::

    dma_iget(dst, src, size, len, strip, &reply)
    dma_iput(dst, src, size, len, strip, &reply)

``size`` elements move in runs of ``len`` contiguous elements; after each
run the main-memory side skips ``strip`` elements (the distance from the
end of one run to the start of the next — for a ``X_τ×Y_τ`` tile of an
``X×Y`` matrix, ``len = Y_τ`` and ``strip = Y − Y_τ``, exactly Fig. 7).
The SPM side is always contiguous.

Functionally the engine performs the strided copy with NumPy fancy
indexing and validates every argument (a malformed ``strip`` raises
:class:`InvalidDMAError`, which several tests rely on).  For timing, the
mesh shares one memory channel: a message occupies the channel for
``startup + bytes/bandwidth`` seconds starting no earlier than both its
issue time and the channel becoming free — so 64 concurrent tile fetches
contend exactly as they would on the shared DDR4 controller.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidDMAError
from repro.sunway.arch import ArchSpec
from repro.sunway.cpe import CPE, ReplyRecord

_DTYPE_BYTES = 8  # DGEMM: double precision throughout


class DMAEngine:
    """Shared main-memory DMA channel of one core group."""

    def __init__(self, arch: ArchSpec) -> None:
        self.arch = arch
        self.channel_free: float = 0.0
        #: optional TraceRecorder attached by the cluster
        self.trace = None

    def reset(self) -> None:
        self.channel_free = 0.0

    # -- helpers ----------------------------------------------------------

    def _validate(
        self,
        src_elems: int,
        offset: int,
        size: int,
        length: int,
        strip: int,
        spm_elems: int,
    ) -> int:
        if size <= 0 or length <= 0:
            raise InvalidDMAError(f"size/len must be positive (size={size}, len={length})")
        if strip < 0:
            raise InvalidDMAError(f"strip must be non-negative, got {strip}")
        if size % length != 0:
            raise InvalidDMAError(f"size {size} is not a multiple of len {length}")
        if size > spm_elems:
            raise InvalidDMAError(
                f"transfer of {size} elements exceeds SPM tile of {spm_elems}"
            )
        rows = size // length
        last = offset + (rows - 1) * (length + strip) + length
        if offset < 0 or last > src_elems:
            raise InvalidDMAError(
                f"main-memory access out of bounds: offset {offset}, "
                f"{rows} runs of {length}+{strip}, array has {src_elems} elements"
            )
        return rows

    def _occupy_channel(
        self, issue_time: float, nbytes: int, run_bytes: int = 0
    ) -> float:
        start = max(issue_time, self.channel_free)
        completion = start + self.arch.dma_time_s(nbytes, run_bytes)
        self.channel_free = completion
        if self.trace is not None:
            self.trace.record("dma", start, completion, "channel")
        return completion

    def _gather_indices(
        self, offset: int, rows: int, length: int, strip: int
    ) -> np.ndarray:
        starts = offset + np.arange(rows) * (length + strip)
        return (starts[:, None] + np.arange(length)[None, :]).ravel()

    # -- the two interfaces ----------------------------------------------------

    def iget(
        self,
        cpe: CPE,
        dst: Optional[np.ndarray],
        dst_key: Tuple[str, int],
        src: Optional[np.ndarray],
        src_elems: int,
        offset: int,
        size: int,
        length: int,
        strip: int,
        reply_name: str,
        move_data: bool = True,
        elem_bytes: int = _DTYPE_BYTES,
    ) -> float:
        """Main memory → SPM.  Returns the modelled completion time."""
        spm_elems = dst.size if dst is not None else size
        rows = self._validate(src_elems, offset, size, length, strip, spm_elems)
        if move_data:
            if src is None or dst is None:
                raise InvalidDMAError("move_data requires both arrays")
            flat = src.reshape(-1)
            idx = self._gather_indices(offset, rows, length, strip)
            dst.reshape(-1)[:size] = flat[idx]
        nbytes = size * elem_bytes
        completion = self._occupy_channel(cpe.clock, nbytes, length * elem_bytes)
        cpe.spm.mark_inflight(dst_key[0], dst_key[1], f"dma_iget/{reply_name}")
        cpe.reply(reply_name).add(ReplyRecord(completion, dst_key))
        cpe.stats["dma_messages"] += 1
        cpe.stats["dma_bytes"] += nbytes
        return completion

    def iput(
        self,
        cpe: CPE,
        dst: Optional[np.ndarray],
        dst_elems: int,
        offset: int,
        src: Optional[np.ndarray],
        src_key: Tuple[str, int],
        size: int,
        length: int,
        strip: int,
        reply_name: str,
        move_data: bool = True,
        elem_bytes: int = _DTYPE_BYTES,
    ) -> float:
        """SPM → main memory.  Returns the modelled completion time."""
        # The tile being written out must itself be ready (e.g. the getC
        # that filled local_C must have been waited on).
        cpe.spm.check_readable(src_key[0], src_key[1])
        spm_elems = src.size if src is not None else size
        rows = self._validate(dst_elems, offset, size, length, strip, spm_elems)
        if move_data:
            if src is None or dst is None:
                raise InvalidDMAError("move_data requires both arrays")
            flat = dst.reshape(-1)
            idx = self._gather_indices(offset, rows, length, strip)
            flat[idx] = src.reshape(-1)[:size]
        nbytes = size * elem_bytes
        completion = self._occupy_channel(cpe.clock, nbytes, length * elem_bytes)
        # The SPM source must not be overwritten until the put completed.
        cpe.spm.mark_inflight(src_key[0], src_key[1], f"dma_iput/{reply_name}")
        cpe.reply(reply_name).add(ReplyRecord(completion, src_key))
        cpe.stats["dma_messages"] += 1
        cpe.stats["dma_bytes"] += nbytes
        return completion
