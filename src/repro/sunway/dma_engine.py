"""The DMA engine: ``dma_iget`` / ``dma_iput`` (§4).

Semantics follow the athread interface the paper documents::

    dma_iget(dst, src, size, len, strip, &reply)
    dma_iput(dst, src, size, len, strip, &reply)

``size`` elements move in runs of ``len`` contiguous elements; after each
run the main-memory side skips ``strip`` elements (the distance from the
end of one run to the start of the next — for a ``X_τ×Y_τ`` tile of an
``X×Y`` matrix, ``len = Y_τ`` and ``strip = Y − Y_τ``, exactly Fig. 7).
The SPM side is always contiguous.

Functionally the engine performs the strided copy with NumPy fancy
indexing and validates every argument (a malformed ``strip`` raises
:class:`InvalidDMAError`, which several tests rely on).  For timing, the
mesh shares one memory channel: a message occupies the channel for
``startup + bytes/bandwidth`` seconds starting no earlier than both its
issue time and the channel becoming free — so 64 concurrent tile fetches
contend exactly as they would on the shared DDR4 controller.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import InvalidDMAError, TransientFaultError
from repro.faults import FaultInjector, FaultPolicy, RetryPolicy, tile_checksum
from repro.sunway.arch import ArchSpec
from repro.sunway.cpe import CPE, ReplyRecord

_DTYPE_BYTES = 8  # DGEMM: double precision throughout


class DMAEngine:
    """Shared main-memory DMA channel of one core group."""

    def __init__(
        self,
        arch: ArchSpec,
        policy: Optional[FaultPolicy] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.arch = arch
        self.channel_free: float = 0.0
        #: optional TraceRecorder attached by the cluster
        self.trace = None
        #: fault configuration and the deterministic injection stream
        self.policy = policy or FaultPolicy()
        self.retry = retry or RetryPolicy()
        self.injector: Optional[FaultInjector] = None
        #: optional CertificateGuard cross-checking each transfer against
        #: the admission verifier's certificate (guarded mode)
        self.guard = None

    def reset(self) -> None:
        self.channel_free = 0.0
        # Back-to-back runs on one cluster must not interleave trace
        # events: a reset starts a fresh recording.
        if self.trace is not None:
            self.trace.clear()

    # -- helpers ----------------------------------------------------------

    def _validate(
        self,
        src_elems: int,
        offset: int,
        size: int,
        length: int,
        strip: int,
        spm_elems: int,
    ) -> int:
        if size <= 0 or length <= 0:
            raise InvalidDMAError(f"size/len must be positive (size={size}, len={length})")
        if strip < 0:
            raise InvalidDMAError(f"strip must be non-negative, got {strip}")
        if size % length != 0:
            raise InvalidDMAError(f"size {size} is not a multiple of len {length}")
        if size > spm_elems:
            raise InvalidDMAError(
                f"transfer of {size} elements exceeds SPM tile of {spm_elems}"
            )
        rows = size // length
        last = offset + (rows - 1) * (length + strip) + length
        if offset < 0 or last > src_elems:
            raise InvalidDMAError(
                f"main-memory access out of bounds: offset {offset}, "
                f"{rows} runs of {length}+{strip}, array has {src_elems} elements"
            )
        return rows

    def _occupy_channel(
        self,
        issue_time: float,
        nbytes: int,
        run_bytes: int = 0,
        factor: float = 1.0,
    ) -> float:
        start = max(issue_time, self.channel_free)
        completion = start + self.arch.dma_time_s(nbytes, run_bytes) * factor
        self.channel_free = completion
        if self.trace is not None:
            self.trace.record("dma", start, completion, "channel")
        return completion

    def _transfer(
        self,
        cpe: CPE,
        what: str,
        nbytes: int,
        run_bytes: int,
        copy_fn: Optional[Callable[[], int]],
        corrupt_fn: Optional[Callable[[], None]],
        readback_fn: Optional[Callable[[], int]],
    ) -> Tuple[float, Optional[int]]:
        """One DMA message under the fault plane.

        Each attempt occupies the channel (possibly with an injected
        latency spike).  A transient fault or a detected checksum
        mismatch costs the attempt plus an exponential backoff, then the
        message is reissued; exhausting the retry budget raises
        :class:`TransientFaultError` naming the CPE and transfer.
        Returns ``(completion time, payload checksum or None)``.
        """
        injector = self.injector
        attempts = 0
        issue = cpe.clock
        while True:
            factor = injector.latency_factor("dma") if injector else 1.0
            faulted = injector.transfer_fault("dma") if injector else False
            completion = self._occupy_channel(issue, nbytes, run_bytes, factor)
            checksum: Optional[int] = None
            if not faulted:
                if copy_fn is not None:
                    checksum = copy_fn()
                    if injector is not None and injector.corrupts("dma"):
                        if corrupt_fn is not None:
                            corrupt_fn()
                    if (
                        self.policy.checksums
                        and readback_fn is not None
                        and readback_fn() != checksum
                    ):
                        faulted = True  # corruption detected: retry the copy
                if not faulted:
                    return completion, checksum
            attempts += 1
            cpe.stats["dma_retries"] += 1
            if attempts > self.retry.max_retries:
                raise TransientFaultError(
                    f"{what} on {cpe!r} failed {attempts} attempt(s); "
                    f"retry budget of {self.retry.max_retries} exhausted "
                    f"(injected transient DMA faults, seed "
                    f"{self.policy.seed})"
                )
            issue = completion + self.retry.backoff(attempts - 1)

    def _gather_indices(
        self, offset: int, rows: int, length: int, strip: int
    ) -> np.ndarray:
        starts = offset + np.arange(rows) * (length + strip)
        return (starts[:, None] + np.arange(length)[None, :]).ravel()

    # -- the two interfaces ----------------------------------------------------

    def iget(
        self,
        cpe: CPE,
        dst: Optional[np.ndarray],
        dst_key: Tuple[str, int],
        src: Optional[np.ndarray],
        src_elems: int,
        offset: int,
        size: int,
        length: int,
        strip: int,
        reply_name: str,
        move_data: bool = True,
        elem_bytes: int = _DTYPE_BYTES,
    ) -> float:
        """Main memory → SPM.  Returns the modelled completion time."""
        spm_elems = dst.size if dst is not None else size
        rows = self._validate(src_elems, offset, size, length, strip, spm_elems)
        if self.guard is not None:
            self.guard.on_dma("get", dst_key[0], size, length)
        copy_fn = corrupt_fn = readback_fn = None
        if move_data:
            if src is None or dst is None:
                raise InvalidDMAError("move_data requires both arrays")
            flat = src.reshape(-1)
            idx = self._gather_indices(offset, rows, length, strip)
            payload = flat[idx]
            dst_flat = dst.reshape(-1)

            def copy_fn() -> int:
                dst_flat[:size] = payload
                return tile_checksum(payload)

            def corrupt_fn() -> None:
                self.injector.corrupt_tile(dst_flat[:size])

            def readback_fn() -> int:
                return tile_checksum(dst_flat[:size])

        nbytes = size * elem_bytes
        completion, checksum = self._transfer(
            cpe, f"dma_iget into {dst_key[0]}[{dst_key[1]}]", nbytes,
            length * elem_bytes, copy_fn, corrupt_fn, readback_fn,
        )
        cpe.spm.mark_inflight(dst_key[0], dst_key[1], f"dma_iget/{reply_name}")
        if checksum is not None and self.policy.checksums:
            cpe.spm.record_checksum(dst_key[0], dst_key[1], checksum, size)
        if self.injector is not None and self.injector.drops_reply("dma"):
            cpe.stats["lost_replies"] += 1
            cpe.lost_replies[reply_name] = (dst_key, completion)
        else:
            cpe.reply(reply_name).add(ReplyRecord(completion, dst_key))
        cpe.stats["dma_messages"] += 1
        cpe.stats["dma_bytes"] += nbytes
        return completion

    def iput(
        self,
        cpe: CPE,
        dst: Optional[np.ndarray],
        dst_elems: int,
        offset: int,
        src: Optional[np.ndarray],
        src_key: Tuple[str, int],
        size: int,
        length: int,
        strip: int,
        reply_name: str,
        move_data: bool = True,
        elem_bytes: int = _DTYPE_BYTES,
    ) -> float:
        """SPM → main memory.  Returns the modelled completion time."""
        # The tile being written out must itself be ready (e.g. the getC
        # that filled local_C must have been waited on).
        cpe.spm.check_readable(src_key[0], src_key[1])
        spm_elems = src.size if src is not None else size
        rows = self._validate(dst_elems, offset, size, length, strip, spm_elems)
        if self.guard is not None:
            self.guard.on_dma("put", src_key[0], size, length)
        copy_fn = corrupt_fn = readback_fn = None
        if move_data:
            if src is None or dst is None:
                raise InvalidDMAError("move_data requires both arrays")
            flat = dst.reshape(-1)
            idx = self._gather_indices(offset, rows, length, strip)
            payload = src.reshape(-1)[:size]

            def copy_fn() -> int:
                flat[idx] = payload
                return tile_checksum(payload)

            def corrupt_fn() -> None:
                self.injector.corrupt_tile(flat, positions=idx)

            def readback_fn() -> int:
                return tile_checksum(flat[idx])

        nbytes = size * elem_bytes
        completion, _ = self._transfer(
            cpe, f"dma_iput from {src_key[0]}[{src_key[1]}]", nbytes,
            length * elem_bytes, copy_fn, corrupt_fn, readback_fn,
        )
        # The SPM source must not be overwritten until the put completed.
        cpe.spm.mark_inflight(src_key[0], src_key[1], f"dma_iput/{reply_name}")
        if self.injector is not None and self.injector.drops_reply("dma"):
            cpe.stats["lost_replies"] += 1
            cpe.lost_replies[reply_name] = (src_key, completion)
        else:
            cpe.reply(reply_name).add(ReplyRecord(completion, src_key))
        cpe.stats["dma_messages"] += 1
        cpe.stats["dma_bytes"] += nbytes
        return completion
