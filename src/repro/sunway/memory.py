"""Main memory of the simulated core group.

A cluster of SW26010Pro attaches 16 GB of DDR4 to its MPE and CPE mesh
through a memory controller (§2.1).  The simulator represents it as a heap
of named NumPy arrays.  The ``-faddress_align=128`` behaviour the paper
relies on (matrix start addresses aligned to 128 bytes, §8) is modelled by
allocating each array inside a slightly larger pool and slicing at an
aligned offset — NumPy's own allocations do not guarantee 128-byte
alignment, and keeping the property explicit lets tests assert it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.errors import HardwareError


class MainMemory:
    """Named array heap with 128-byte-aligned allocations."""

    ALIGN = 128

    def __init__(self, capacity_bytes: int = 16 * 1024**3) -> None:
        self.capacity_bytes = capacity_bytes
        self._arrays: Dict[str, np.ndarray] = {}
        self._used = 0

    # -- allocation ------------------------------------------------------

    def alloc(self, name: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Allocate a zero-initialised aligned array."""
        if name in self._arrays:
            raise HardwareError(f"array {name!r} already allocated")
        itemsize = np.dtype(dtype).itemsize
        count = int(np.prod(shape))
        nbytes = count * itemsize
        if self._used + nbytes > self.capacity_bytes:
            raise HardwareError(
                f"main memory exhausted: {self._used + nbytes} > {self.capacity_bytes}"
            )
        raw = np.zeros(count + self.ALIGN // itemsize, dtype=dtype)
        offset = (-raw.ctypes.data) % self.ALIGN // itemsize
        view = raw[offset : offset + count].reshape(shape)
        view[...] = 0
        self._arrays[name] = view
        self._used += nbytes
        return view

    def bind(self, name: str, array: np.ndarray) -> np.ndarray:
        """Adopt an existing array (copied to an aligned allocation)."""
        view = self.alloc(name, array.shape, array.dtype)
        view[...] = array
        return view

    def free(self, name: str) -> None:
        array = self._arrays.pop(name, None)
        if array is None:
            raise HardwareError(f"array {name!r} is not allocated")
        self._used -= array.size * array.itemsize

    # -- access -------------------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise HardwareError(f"array {name!r} is not allocated") from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def names(self) -> Iterator[str]:
        return iter(self._arrays)

    def is_aligned(self, name: str) -> bool:
        return self[name].ctypes.data % self.ALIGN == 0

    @property
    def used_bytes(self) -> int:
        return self._used
