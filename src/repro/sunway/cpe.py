"""Compute processing element (CPE) state.

Each CPE owns its SPM, a set of DMA/RMA reply counters, a virtual clock
(seconds since kernel launch) and the RMA arming flag that models the
``synch()``-before-RMA rule of §5.  The clock is advanced by the executor:
compute advances it by modelled kernel time, waits advance it to the
completion time of the transfer being waited on — which is precisely how
the overlap created by the software-pipelined schedule (Fig. 10) turns
into measured time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HardwareError, SynchronizationError
from repro.sunway.spm import ScratchPadMemory


@dataclass
class ReplyRecord:
    """One pending transfer completion."""

    time: float
    buffer: Optional[Tuple[str, int]] = None  # (spm buffer, slot) to un-poison


class ReplyCounter:
    """A DMA/RMA reply signal (§4).

    Initialised to zero, incremented once per completed message; the
    generated code resets it before issuing and waits for a target value
    afterwards (``reply = 0; ... ; dma_wait_value(&reply, 1);``).
    """

    __slots__ = ("name", "value", "records")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.records: List[ReplyRecord] = []

    def reset(self) -> None:
        self.value = 0
        self.records.clear()

    def add(self, record: ReplyRecord) -> None:
        self.value += 1
        self.records.append(record)

    def satisfied(self, target: int) -> bool:
        return self.value >= target

    def completion_time(self, target: int) -> float:
        if not self.satisfied(target):
            raise SynchronizationError(
                f"reply {self.name!r} waited to {target} but only "
                f"{self.value} messages completed"
            )
        return max(r.time for r in self.records[:target])

    def consume(self, target: int) -> List[ReplyRecord]:
        """Records for the first ``target`` completions."""
        return self.records[:target]


class CPE:
    """One compute processing element of the mesh."""

    def __init__(self, rid: int, cid: int, spm_bytes: int) -> None:
        self.rid = rid
        self.cid = cid
        self.spm = ScratchPadMemory(spm_bytes, owner=f"CPE({rid},{cid})")
        self.replies: Dict[str, ReplyCounter] = {}
        self.clock: float = 0.0
        # §5: an RMA may only be launched after a synch(); the flag is set
        # by the barrier and cleared when the RMA pair has been waited on.
        self.rma_armed: bool = False
        # Reply counters whose increment was dropped by the fault
        # injector: reply name -> (poisoned buffer slot, completion time).
        # The executor watchdog uses this to name the lost transfer.
        self.lost_replies: Dict[str, Tuple[Optional[Tuple[str, int]], float]] = {}
        # Simple counters for reporting/tests.
        self.stats: Dict[str, float] = {
            "dma_messages": 0,
            "dma_bytes": 0,
            "rma_messages": 0,
            "rma_bytes": 0,
            "kernel_calls": 0,
            "compute_seconds": 0.0,
            "dma_retries": 0,
            "rma_retries": 0,
            "lost_replies": 0,
        }

    # -- reply counters ----------------------------------------------------

    def reply(self, name: str) -> ReplyCounter:
        counter = self.replies.get(name)
        if counter is None:
            counter = ReplyCounter(name)
            self.replies[name] = counter
        return counter

    # -- clock ---------------------------------------------------------------

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise HardwareError(f"cannot advance clock by {seconds}")
        self.clock += seconds

    def sync_to(self, time: float) -> None:
        if time > self.clock:
            self.clock = time

    def reset(self) -> None:
        self.spm.free_all()
        self.replies.clear()
        self.lost_replies.clear()
        self.clock = 0.0
        self.rma_armed = False
        for key in self.stats:
            self.stats[key] = 0 if isinstance(self.stats[key], int) else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CPE({self.rid},{self.cid})"
