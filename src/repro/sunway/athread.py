"""athread-style runtime facade.

The generated CPE code of the paper calls the athread programming model:
``dma_iget``/``dma_iput`` with reply counters (§4), ``rma_row_ibcast``/
``rma_col_ibcast`` with ``replys``/``replyr`` (§5), ``synch()`` and the
``*_wait_value`` spin waits.  This class exposes exactly that interface on
top of the simulated cluster so the AST interpreter reads like the
generated C program.

Waits are split into a *poll* (``reply_satisfied``) and a *commit*
(``finish_wait``) so the coroutine scheduler in the executor can yield
between polls — cross-CPE blocking (a receiver waiting for a broadcast the
sender has not issued yet) then works exactly like the hardware's spin
loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import HardwareError
from repro.sunway.cpe import CPE
from repro.sunway.mesh import Cluster


class AthreadRuntime:
    """Per-cluster runtime services for interpreted CPE programs."""

    def __init__(
        self, cluster: Cluster, move_data: bool = True, elem_bytes: int = 8
    ) -> None:
        self.cluster = cluster
        self.move_data = move_data
        #: element width of the matrices (8 for DGEMM, 4 for SGEMM)
        self.elem_bytes = elem_bytes

    # -- DMA (§4) -----------------------------------------------------------

    def dma_iget(
        self,
        cpe: CPE,
        dst_key: Tuple[str, int],
        array_name: str,
        offset: int,
        size: int,
        length: int,
        strip: int,
        reply: str,
    ) -> float:
        dst = cpe.spm.slot(dst_key[0], dst_key[1])
        src = self.cluster.memory[array_name]
        return self.cluster.dma.iget(
            cpe,
            dst if self.move_data else dst,
            dst_key,
            src if self.move_data else None,
            src.size,
            offset,
            size,
            length,
            strip,
            reply,
            move_data=self.move_data,
            elem_bytes=self.elem_bytes,
        )

    def dma_iput(
        self,
        cpe: CPE,
        array_name: str,
        offset: int,
        src_key: Tuple[str, int],
        size: int,
        length: int,
        strip: int,
        reply: str,
    ) -> float:
        src = cpe.spm.slot(src_key[0], src_key[1])
        dst = self.cluster.memory[array_name]
        return self.cluster.dma.iput(
            cpe,
            dst if self.move_data else None,
            dst.size,
            offset,
            src if self.move_data else None,
            src_key,
            size,
            length,
            strip,
            reply,
            move_data=self.move_data,
            elem_bytes=self.elem_bytes,
        )

    # -- RMA (§5) ----------------------------------------------------------------

    def rma_row_ibcast(
        self,
        cpe: CPE,
        src_key: Tuple[str, int],
        dst_key: Tuple[str, int],
        size: int,
        replys: str,
        replyr: str,
    ) -> float:
        return self.cluster.rma.row_ibcast(
            cpe, src_key, dst_key, size, replys, replyr,
            move_data=self.move_data, elem_bytes=self.elem_bytes,
        )

    def rma_col_ibcast(
        self,
        cpe: CPE,
        src_key: Tuple[str, int],
        dst_key: Tuple[str, int],
        size: int,
        replys: str,
        replyr: str,
    ) -> float:
        return self.cluster.rma.col_ibcast(
            cpe, src_key, dst_key, size, replys, replyr,
            move_data=self.move_data, elem_bytes=self.elem_bytes,
        )

    # -- reply counters -------------------------------------------------------------

    def reply_reset(self, cpe: CPE, name: str) -> None:
        cpe.reply(name).reset()
        # A reset opens a new transfer window: any reply loss recorded for
        # the previous window no longer explains a stall on this counter.
        cpe.lost_replies.pop(name, None)

    def reply_satisfied(self, cpe: CPE, name: str, value: int) -> bool:
        return cpe.reply(name).satisfied(value)

    def finish_wait(self, cpe: CPE, name: str, value: int) -> None:
        """Commit a completed ``*_wait_value``: advance the CPE clock to
        the completion time and un-poison the buffers it covered."""
        counter = cpe.reply(name)
        cpe.sync_to(counter.completion_time(value))
        for record in counter.consume(value):
            if record.buffer is not None:
                cpe.spm.clear_inflight(record.buffer[0], record.buffer[1])
        # A completed RMA wait disarms the launch window (§5): the next
        # launch group needs a fresh synch().
        if name.startswith("rma") or name.startswith("bcast") or "bcast" in name:
            cpe.rma_armed = False

    # -- barrier ----------------------------------------------------------------------

    def barrier_arrive(self, cpe: CPE) -> int:
        return self.cluster.barrier.arrive(cpe)

    def barrier_passed(self, token: int) -> bool:
        return self.cluster.barrier.passed(token)

    # -- compute helpers -----------------------------------------------------------------

    def charge_compute(self, cpe: CPE, seconds: float, kind: str = "kernel") -> None:
        start = cpe.clock
        cpe.advance(seconds)
        cpe.stats["compute_seconds"] += seconds
        if self.cluster.trace is not None:
            self.cluster.trace.record(
                kind, start, cpe.clock, f"CPE({cpe.rid},{cpe.cid})"
            )

    def main_array(self, name: str) -> np.ndarray:
        return self.cluster.memory[name]
