"""Per-CPE scratch-pad memory (SPM).

Each CPE of SW26010Pro manages a 256 KB software-controlled SPM (§2.1).
The compiler's buffer plan (one C tile, 2×-double-buffered A and B tiles
for both the DMA and the RMA level — nine buffers total, §6.3) is
materialised here.  The allocator enforces capacity exactly: a plan that
would not fit on the real hardware raises :class:`SPMOverflowError`, which
is how the analytical tile-size model of §3.1 is validated.

The allocator also tracks an *in-flight* flag per buffer slot: a DMA or
RMA whose reply counter has not been waited on leaves its destination slot
poisoned, and any compute touching a poisoned slot raises
:class:`SynchronizationError`.  This turns the paper's memory-latency-
hiding discipline (Fig. 11) into a machine-checked property.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import HardwareError, SPMOverflowError, SynchronizationError


class ScratchPadMemory:
    """A capacity-checked heap of named tile buffers.

    Buffers may be multi-slot (leading dimension = double-buffer count);
    slots are addressed by an integer index and carry their own in-flight
    state.
    """

    def __init__(self, capacity_bytes: int, owner: str = "") -> None:
        self.capacity_bytes = capacity_bytes
        self.owner = owner
        self._buffers: Dict[str, np.ndarray] = {}
        self._inflight: Dict[Tuple[str, int], str] = {}
        # End-to-end integrity: (buffer, slot) -> (crc32, element count)
        # recorded by the engine that last filled the slot.
        self._checksums: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self._used = 0

    # -- allocation ---------------------------------------------------------

    def alloc(
        self, name: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        if name in self._buffers:
            raise HardwareError(f"SPM buffer {name!r} already allocated ({self.owner})")
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if self._used + nbytes > self.capacity_bytes:
            raise SPMOverflowError(
                f"SPM overflow on {self.owner or 'CPE'}: buffer {name!r} "
                f"({nbytes} B) exceeds capacity "
                f"({self._used} used of {self.capacity_bytes})"
            )
        buffer = np.zeros(shape, dtype=dtype)
        self._buffers[name] = buffer
        self._used += nbytes
        return buffer

    def free(self, name: str) -> None:
        """Release one buffer, returning its bytes to the allocator.

        Freeing a buffer with an in-flight slot would let an async DMA/RMA
        land into reclaimed (possibly re-allocated) memory, so it raises
        :class:`SynchronizationError` — the same discipline the verifier's
        hazard machine proves statically.
        """
        buffer = self._buffers.get(name)
        if buffer is None:
            raise HardwareError(
                f"cannot free SPM buffer {name!r}: not allocated "
                f"on {self.owner or 'CPE'}"
            )
        pending = sorted(slot for (n, slot) in self._inflight if n == name)
        if pending:
            causes = {self._inflight[(name, s)] for s in pending}
            raise SynchronizationError(
                f"{self.owner or 'CPE'} freed SPM buffer {name!r} while "
                f"slot(s) {pending} are still in flight "
                f"({', '.join(sorted(causes))})"
            )
        del self._buffers[name]
        self._used -= buffer.nbytes
        self._checksums = {
            key: value for key, value in self._checksums.items() if key[0] != name
        }

    def free_all(self) -> None:
        self._buffers.clear()
        self._inflight.clear()
        self._checksums.clear()
        self._used = 0

    # -- access -------------------------------------------------------------

    def buffer(self, name: str) -> np.ndarray:
        try:
            return self._buffers[name]
        except KeyError:
            raise HardwareError(
                f"SPM buffer {name!r} not allocated on {self.owner or 'CPE'}"
            ) from None

    def slot(self, name: str, index: int = 0) -> np.ndarray:
        """One slot of a (possibly multi-slot) buffer as a 2-D tile."""
        buf = self.buffer(name)
        if buf.ndim == 2:
            if index != 0:
                raise HardwareError(
                    f"buffer {name!r} is single-slot; got slot index {index}"
                )
            return buf
        if not 0 <= index < buf.shape[0]:
            raise HardwareError(
                f"slot index {index} out of range for buffer {name!r} "
                f"with {buf.shape[0]} slots"
            )
        return buf[index]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def names(self) -> Iterator[str]:
        return iter(self._buffers)

    @property
    def used_bytes(self) -> int:
        return self._used

    # -- in-flight discipline ------------------------------------------------

    def mark_inflight(self, name: str, index: int, cause: str) -> None:
        self.buffer(name)  # existence check
        self._inflight[(name, index)] = cause

    def clear_inflight(self, name: str, index: int) -> None:
        self._inflight.pop((name, index), None)

    def check_readable(self, name: str, index: int) -> None:
        cause = self._inflight.get((name, index))
        if cause is not None:
            raise SynchronizationError(
                f"{self.owner or 'CPE'} read SPM buffer {name!r} slot {index} "
                f"while a transfer is still in flight ({cause}); a "
                f"dma_wait_value/rma_wait_value is missing in the schedule"
            )

    def inflight_slots(self) -> Dict[Tuple[str, int], str]:
        return dict(self._inflight)

    # -- end-to-end tile checksums -------------------------------------------

    def record_checksum(self, name: str, index: int, crc: int, elems: int) -> None:
        """Remember the integrity checksum of the data that filled a slot."""
        self._checksums[(name, index)] = (crc, elems)

    def stored_checksum(self, name: str, index: int) -> Optional[Tuple[int, int]]:
        return self._checksums.get((name, index))

    def verify_checksum(self, name: str, index: int, size: int) -> None:
        """Re-verify a slot against its recorded checksum before the data
        leaves the SPM again (the DMA→RMA hop of the §6 pipeline).

        Only slots whose recorded element count matches ``size`` are
        checked — a slot reused at a different granularity simply has no
        applicable record.  A mismatch means the SPM content rotted
        between the fill and the re-send: raise instead of broadcasting
        garbage across the mesh.
        """
        from repro.errors import DataIntegrityError
        from repro.faults import tile_checksum

        record = self._checksums.get((name, index))
        if record is None or record[1] != size:
            return
        actual = tile_checksum(self.slot(name, index).reshape(-1)[:size])
        if actual != record[0]:
            raise DataIntegrityError(
                f"{self.owner or 'CPE'} SPM buffer {name!r} slot {index} "
                f"failed its integrity check before an RMA re-send: "
                f"crc {actual:#010x} != recorded {record[0]:#010x} over "
                f"{size} elements"
            )
