"""Execution tracing and overlap analysis.

Fig. 10 of the paper *draws* the two-level latency-hiding pipeline; this
module lets the reproduction *measure* it.  A :class:`TraceRecorder`
attached to a cluster collects activity spans — micro-kernel executions
per CPE, DMA-channel occupancy, RMA-channel occupancy — during a timed
run, and :class:`OverlapReport` computes how much of the communication
time was hidden behind computation.

The test-suite asserts the paper's central mechanism directly: with the
§6 schedule the DMA channel's busy time is almost entirely covered by
concurrently running kernels, and with hiding disabled it is not.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

Span = Tuple[float, float]  # [start, end)


@dataclass(frozen=True)
class TraceEvent:
    """One activity span."""

    kind: str  # "kernel" | "dma" | "rma" | "blockop"
    start: float
    end: float
    who: str  # "CPE(r,c)" or "channel"
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects spans; negligible overhead when disabled (``None``)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(
        self, kind: str, start: float, end: float, who: str, detail: str = ""
    ) -> None:
        if end > start:
            self.events.append(TraceEvent(kind, start, end, who, detail))

    def spans(self, kind: str) -> List[Span]:
        return sorted(
            (e.start, e.end) for e in self.events if e.kind == kind
        )

    def busy_time(self, kind: str) -> float:
        return _union_length(self.spans(kind))

    def clear(self) -> None:
        self.events.clear()


def _merge(spans: Sequence[Span]) -> List[Span]:
    """Union of intervals as a sorted disjoint list."""
    merged: List[Span] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _union_length(spans: Sequence[Span]) -> float:
    return sum(end - start for start, end in _merge(spans))


def _intersection_length(spans: Sequence[Span], cover: Sequence[Span]) -> float:
    """Length of ``spans`` covered by the union ``cover``."""
    cover = _merge(cover)
    if not cover:
        return 0.0
    starts = [c[0] for c in cover]
    total = 0.0
    for start, end in _merge(spans):
        # Walk the cover intervals overlapping [start, end).
        index = max(0, bisect.bisect_right(starts, start) - 1)
        while index < len(cover) and cover[index][0] < end:
            c0, c1 = cover[index]
            total += max(0.0, min(end, c1) - max(start, c0))
            index += 1
    return total


@dataclass
class OverlapReport:
    """How much communication hid behind computation."""

    kernel_busy: float
    dma_busy: float
    rma_busy: float
    dma_hidden_fraction: float
    rma_hidden_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"kernel {self.kernel_busy * 1e3:.3f} ms | "
            f"dma {self.dma_busy * 1e3:.3f} ms "
            f"({100 * self.dma_hidden_fraction:.1f}% hidden) | "
            f"rma {self.rma_busy * 1e3:.3f} ms "
            f"({100 * self.rma_hidden_fraction:.1f}% hidden)"
        )


def analyze_overlap(recorder: TraceRecorder) -> OverlapReport:
    """Fraction of DMA/RMA channel time covered by *any* CPE computing.

    This is exactly the quantity Fig. 10 shades: a communication interval
    is "hidden" while at least one kernel is executing somewhere on the
    mesh (the mesh-wide schedule is lockstep, so mesh-level cover is the
    right granularity)."""
    compute = recorder.spans("kernel") + recorder.spans("blockop")
    dma = recorder.spans("dma")
    rma = recorder.spans("rma")
    dma_busy = _union_length(dma)
    rma_busy = _union_length(rma)
    return OverlapReport(
        kernel_busy=_union_length(compute),
        dma_busy=dma_busy,
        rma_busy=rma_busy,
        dma_hidden_fraction=(
            _intersection_length(dma, compute) / dma_busy if dma_busy else 0.0
        ),
        rma_hidden_fraction=(
            _intersection_length(rma, compute) / rma_busy if rma_busy else 0.0
        ),
    )
