"""The management processing element (MPE).

The MPE runs the main function: it allocates matrices, spawns the CPE
kernel and joins it (§2.1).  It *can* execute compute, but inefficiently —
the paper's fusion baselines run the prologue/epilogue element-wise
operations on the MPE, which is exactly what makes them slow (§8.4).  The
MPE therefore exposes a modelled element-wise execution primitive used by
the xMath-based baselines.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sunway.arch import ArchSpec


class MPE:
    """Management processing element with a two-level cache (modelled only
    through its scalar element-wise rate)."""

    def __init__(self, arch: ArchSpec) -> None:
        self.arch = arch
        self.clock = 0.0

    def reset(self) -> None:
        self.clock = 0.0

    def elementwise(
        self,
        array: np.ndarray,
        func: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> float:
        """Apply ``func`` element-wise on the MPE; returns modelled seconds.

        The data transformation itself is vectorised (this is a simulator)
        but the *time* charged corresponds to scalar MPE execution with
        cache-hierarchy traffic, per the architecture's calibrated rate.
        """
        if func is not None:
            array[...] = func(array)
        seconds = array.size / self.arch.mpe_elementwise_rate
        self.clock += seconds
        return seconds
