"""Simulated SW26010Pro core group.

The paper's compiler targets one *cluster* (core group) of the SW26010Pro
processor: a management processing element (MPE), an 8×8 mesh of compute
processing elements (CPEs) each owning a 256 KB software-managed
scratch-pad memory (SPM), a shared DDR4 main memory reached through DMA,
and a remote-memory-access (RMA) fabric that can broadcast SPM tiles along
mesh rows/columns (§2.1, Fig. 1).

Real SW26010Pro hardware is inaccessible, so this subpackage provides a
*functional and timed simulator* with the same programming contract as the
``athread`` runtime the paper generates code for:

* :mod:`repro.sunway.arch` — architecture parameters (SW26010Pro default,
  SW26010 and a down-scaled test preset);
* :mod:`repro.sunway.memory` — the core group's main memory;
* :mod:`repro.sunway.spm` — per-CPE SPM with capacity enforcement;
* :mod:`repro.sunway.cpe` / :mod:`repro.sunway.mesh` — CPE state and the
  8×8 mesh (cluster);
* :mod:`repro.sunway.dma_engine` — ``dma_iget``/``dma_iput`` with the
  paper's ``size``/``len``/``strip`` semantics and reply counters (§4);
* :mod:`repro.sunway.rma_engine` — point-to-point and row/column/all
  broadcasts with ``replys``/``replyr`` semantics (§5);
* :mod:`repro.sunway.athread` — the athread-style runtime facade the
  generated programs execute against.

The simulator deliberately *fails loudly* on discipline violations (SPM
overflow, consuming un-waited DMA data, RMA without ``synch()``), so the
compiler's buffer plan and latency-hiding schedule are validated rather
than trusted.
"""

from repro.sunway.arch import (
    SW26010,
    SW26010PRO,
    SW26010PRO_HBM,
    SW26010PRO_LITE,
    TOY_ARCH,
    ArchSpec,
    MicroKernelShape,
    all_archs,
    arch_names,
    get_arch,
    register_arch,
)
from repro.sunway.mesh import Cluster
from repro.sunway.athread import AthreadRuntime

__all__ = [
    "ArchSpec",
    "MicroKernelShape",
    "SW26010PRO",
    "SW26010",
    "TOY_ARCH",
    "SW26010PRO_HBM",
    "SW26010PRO_LITE",
    "Cluster",
    "AthreadRuntime",
    "all_archs",
    "arch_names",
    "get_arch",
    "register_arch",
]
