"""The RMA engine: SPM-to-SPM communication inside the CPE mesh (§5).

SW26010Pro offers three manners (Fig. 8): point-to-point, row/column-wise
broadcast, and all-broadcast (internally a row+column combination).  The
compiler uses the row broadcast for ``A_τ`` and the column broadcast for
``B_τ`` so each input tile is fetched from main memory exactly once per
mesh row/column — the 8× DMA-traffic reduction responsible for the 4.38×
step in the paper's performance breakdown (§8.1).

Interface semantics follow the athread model::

    rma_row_ibcast(dst, src, size, &replys, &replyr)
    rma_col_ibcast(dst, src, size, &replys, &replyr)

``replys`` increments on the *sender* when the message is out; ``replyr``
increments on every *receiver* (the sender receives its own broadcast too,
so uniform SPMD code can wait for ``replyr >= 1`` everywhere).  The engine
enforces the §5 rule that a ``synch()`` must precede each launch group —
issuing from a CPE whose ``rma_armed`` flag is unset raises
:class:`SynchronizationError`.

Timing: each mesh row and each mesh column owns an independent broadcast
channel (so the simultaneous A-row and B-column broadcasts of §6.1 do not
contend), and a broadcast is a pipelined multicast occupying its channel
for ``startup + bytes/bandwidth`` seconds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import (
    DataIntegrityError,
    InvalidRMAError,
    SynchronizationError,
    TransientFaultError,
)
from repro.faults import FaultInjector, FaultPolicy, RetryPolicy, tile_checksum
from repro.sunway.arch import ArchSpec
from repro.sunway.cpe import CPE, ReplyRecord

_DTYPE_BYTES = 8


class RMAEngine:
    """Row/column broadcast fabric of one CPE mesh."""

    def __init__(
        self,
        arch: ArchSpec,
        mesh: List[List[CPE]],
        policy: Optional[FaultPolicy] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.arch = arch
        self.mesh = mesh
        self.row_channel_free = [0.0] * arch.mesh_rows
        self.col_channel_free = [0.0] * arch.mesh_cols
        #: optional TraceRecorder attached by the cluster
        self.trace = None
        #: fault configuration and the deterministic injection stream
        self.policy = policy or FaultPolicy()
        self.retry = retry or RetryPolicy()
        self.injector: Optional[FaultInjector] = None
        #: optional CertificateGuard cross-checking each broadcast against
        #: the admission verifier's certificate (guarded mode)
        self.guard = None

    def reset(self) -> None:
        self.row_channel_free = [0.0] * self.arch.mesh_rows
        self.col_channel_free = [0.0] * self.arch.mesh_cols
        # Back-to-back runs on one cluster must not interleave trace
        # events: a reset starts a fresh recording.
        if self.trace is not None:
            self.trace.clear()

    # -- common ---------------------------------------------------------

    def _check_armed(self, sender: CPE) -> None:
        if not self.arch.rma_supported:
            raise InvalidRMAError(
                f"{self.arch.name} does not support SPM RMA; the compiler "
                "should not have emitted an RMA statement for this target"
            )
        if not sender.rma_armed:
            raise SynchronizationError(
                f"{sender!r} issued an RMA without a preceding synch() — "
                "the athread programming model requires a synchronisation "
                "before each RMA launch (§5)"
            )

    def _occupy(
        self, free_list: List[float], index: int, issue: float, nbytes: int,
        label: str,
    ) -> float:
        """One attempt on a row/column channel, with latency spikes."""
        factor = self.injector.latency_factor("rma") if self.injector else 1.0
        start = max(issue, free_list[index])
        completion = start + self.arch.rma_time_s(nbytes) * factor
        free_list[index] = completion
        if self.trace is not None:
            self.trace.record("rma", start, completion, label)
        return completion

    def _occupy_with_retries(
        self, sender: CPE, free_list: List[float], index: int, nbytes: int,
        label: str, what: str,
    ) -> float:
        """Occupy a channel under the fault plane: a transiently failed
        broadcast costs the attempt plus backoff, then relaunches."""
        attempts = 0
        issue = sender.clock
        while True:
            completion = self._occupy(free_list, index, issue, nbytes, label)
            if not (self.injector is not None
                    and self.injector.transfer_fault("rma")):
                return completion
            attempts += 1
            sender.stats["rma_retries"] += 1
            if attempts > self.retry.max_retries:
                raise TransientFaultError(
                    f"{what} from {sender!r} failed {attempts} attempt(s); "
                    f"retry budget of {self.retry.max_retries} exhausted "
                    f"(injected transient RMA faults, seed {self.policy.seed})"
                )
            issue = completion + self.retry.backoff(attempts - 1)

    def _deliver(
        self,
        sender: CPE,
        receivers: List[CPE],
        src_key: Tuple[str, int],
        dst_key: Tuple[str, int],
        size: int,
        replys: str,
        replyr: str,
        completion: float,
        move_data: bool,
    ) -> None:
        sender.spm.check_readable(src_key[0], src_key[1])
        if move_data and self.policy.checksums:
            # End-to-end integrity: the tile the DMA landed must still be
            # intact when it leaves the SPM again on the RMA hop.
            sender.spm.verify_checksum(src_key[0], src_key[1], size)
        src_tile = sender.spm.slot(src_key[0], src_key[1])
        if size <= 0 or size > src_tile.size:
            raise InvalidRMAError(
                f"RMA size {size} outside source tile of {src_tile.size} elements"
            )
        expected: Optional[int] = None
        if move_data and self.policy.checksums:
            expected = tile_checksum(src_tile.reshape(-1)[:size])
        nbytes = size * _DTYPE_BYTES
        for receiver in receivers:
            dst_tile = receiver.spm.slot(dst_key[0], dst_key[1])
            if size > dst_tile.size:
                raise InvalidRMAError(
                    f"RMA size {size} exceeds destination tile of {dst_tile.size}"
                )
            if move_data:
                dst_flat = dst_tile.reshape(-1)
                attempts = 0
                while True:
                    dst_flat[:size] = src_tile.reshape(-1)[:size]
                    if (self.injector is not None
                            and self.injector.corrupts("rma")):
                        self.injector.corrupt_tile(dst_flat[:size])
                    if (expected is not None
                            and tile_checksum(dst_flat[:size]) != expected):
                        attempts += 1
                        receiver.stats["rma_retries"] += 1
                        if attempts > self.retry.max_retries:
                            raise DataIntegrityError(
                                f"RMA delivery into {dst_key[0]}"
                                f"[{dst_key[1]}] on {receiver!r} failed its "
                                f"checksum {attempts} time(s); retry budget "
                                f"of {self.retry.max_retries} exhausted"
                            )
                        continue
                    break
                if expected is not None:
                    receiver.spm.record_checksum(
                        dst_key[0], dst_key[1], expected, size
                    )
            receiver.spm.mark_inflight(dst_key[0], dst_key[1], f"rma/{replyr}")
            if self.injector is not None and self.injector.drops_reply("rma"):
                receiver.stats["lost_replies"] += 1
                receiver.lost_replies[replyr] = (dst_key, completion)
            else:
                receiver.reply(replyr).add(ReplyRecord(completion, dst_key))
        if self.injector is not None and self.injector.drops_reply("rma"):
            sender.stats["lost_replies"] += 1
            sender.lost_replies[replys] = (None, completion)
        else:
            sender.reply(replys).add(ReplyRecord(completion, None))
        sender.stats["rma_messages"] += 1
        sender.stats["rma_bytes"] += nbytes

    # -- the three manners (Fig. 8) ------------------------------------------

    def row_ibcast(
        self,
        sender: CPE,
        src_key: Tuple[str, int],
        dst_key: Tuple[str, int],
        size: int,
        replys: str,
        replyr: str,
        move_data: bool = True,
        elem_bytes: int = _DTYPE_BYTES,
    ) -> float:
        """Broadcast the sender's SPM tile to every CPE on its mesh row."""
        self._check_armed(sender)
        if self.guard is not None:
            self.guard.on_rma("row", src_key[0], dst_key[0], size)
        receivers = list(self.mesh[sender.rid])
        completion = self._occupy_with_retries(
            sender, self.row_channel_free, sender.rid, size * elem_bytes,
            f"row{sender.rid}", "rma_row_ibcast",
        )
        self._deliver(
            sender, receivers, src_key, dst_key, size, replys, replyr,
            completion, move_data,
        )
        return completion

    def col_ibcast(
        self,
        sender: CPE,
        src_key: Tuple[str, int],
        dst_key: Tuple[str, int],
        size: int,
        replys: str,
        replyr: str,
        move_data: bool = True,
        elem_bytes: int = _DTYPE_BYTES,
    ) -> float:
        """Broadcast the sender's SPM tile to every CPE on its mesh column."""
        self._check_armed(sender)
        if self.guard is not None:
            self.guard.on_rma("col", src_key[0], dst_key[0], size)
        receivers = [row[sender.cid] for row in self.mesh]
        completion = self._occupy_with_retries(
            sender, self.col_channel_free, sender.cid, size * elem_bytes,
            f"col{sender.cid}", "rma_col_ibcast",
        )
        self._deliver(
            sender, receivers, src_key, dst_key, size, replys, replyr,
            completion, move_data,
        )
        return completion

    def p2p(
        self,
        sender: CPE,
        target: CPE,
        src_key: Tuple[str, int],
        dst_key: Tuple[str, int],
        size: int,
        replys: str,
        replyr: str,
        move_data: bool = True,
    ) -> float:
        """Point-to-point RMA (Fig. 8a).

        A same-row transfer uses the row channel directly; otherwise the
        message transits through the CPE at (sender row, target column),
        costing a second hop on the column channel — matching the
        transit-point behaviour the paper describes.
        """
        self._check_armed(sender)
        nbytes = size * _DTYPE_BYTES
        if target.rid == sender.rid:
            completion = self._occupy(
                self.row_channel_free, sender.rid, sender.clock, nbytes,
                f"row{sender.rid}",
            )
        else:
            hop1 = self._occupy(
                self.row_channel_free, sender.rid, sender.clock, nbytes,
                f"row{sender.rid}",
            )
            completion = self._occupy(
                self.col_channel_free, target.cid, hop1, nbytes,
                f"col{target.cid}",
            )
        self._deliver(
            sender, [target], src_key, dst_key, size, replys, replyr,
            completion, move_data,
        )
        return completion

    def all_bcast(
        self,
        sender: CPE,
        src_key: Tuple[str, int],
        dst_key: Tuple[str, int],
        size: int,
        replys: str,
        replyr: str,
        move_data: bool = True,
    ) -> float:
        """Broadcast to every CPE (Fig. 8c): a row broadcast followed by a
        column broadcast from each CPE of the sender's row."""
        self._check_armed(sender)
        row_done = self.row_ibcast(
            sender, src_key, dst_key, size, replys, replyr, move_data
        )
        completion = row_done
        for cpe in self.mesh[sender.rid]:
            # The transit hop re-sends the freshly received tile: it is
            # available at row_done, so un-poison it and inherit arming.
            cpe.spm.clear_inflight(dst_key[0], dst_key[1])
            cpe.rma_armed = True
        for cpe in list(self.mesh[sender.rid]):
            done = self._occupy(
                self.col_channel_free, cpe.cid, row_done, size * _DTYPE_BYTES,
                f"col{cpe.cid}",
            )
            completion = max(completion, done)
            receivers = [row[cpe.cid] for row in self.mesh if row[cpe.cid] is not cpe]
            self._deliver(
                cpe, receivers, dst_key, dst_key, size, replys, replyr,
                done, move_data,
            )
        return completion
