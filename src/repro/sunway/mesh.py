"""The core group (cluster): MPE + 8×8 CPE mesh + engines + barrier.

The cluster object is what a compiled program executes against.  It owns
the main memory, the DMA and RMA engines, the mesh barrier that implements
``synch()``, and the per-CPE state.  The barrier also models the §5 rule
that synchronisation *arms* subsequent RMA launches.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import MeshError
from repro.faults import FaultInjector, FaultPolicy, RetryPolicy
from repro.sunway.arch import ArchSpec
from repro.sunway.cpe import CPE
from repro.sunway.dma_engine import DMAEngine
from repro.sunway.memory import MainMemory
from repro.sunway.mpe import MPE
from repro.sunway.rma_engine import RMAEngine


class Barrier:
    """A generation-counting mesh barrier.

    The executor's coroutine scheduler calls :meth:`arrive` once per CPE
    and spins (yields) until :meth:`passed`.  When the last participant
    arrives, every clock is advanced to the common release time
    (``max(clocks) + sync cost``) and RMA launches are armed.
    """

    def __init__(self, arch: ArchSpec, cpes: List[CPE]) -> None:
        self.arch = arch
        self.expected = len(cpes)
        self.generation = 0
        self._arrived: List[CPE] = []

    def arrive(self, cpe: CPE) -> int:
        if cpe in self._arrived:
            raise MeshError(f"{cpe!r} arrived twice at the same barrier")
        token = self.generation
        self._arrived.append(cpe)
        if len(self._arrived) == self.expected:
            release = max(c.clock for c in self._arrived) + self.arch.sync_us * 1e-6
            for c in self._arrived:
                c.sync_to(release)
                c.rma_armed = True
            self._arrived.clear()
            self.generation += 1
        return token

    def passed(self, token: int) -> bool:
        return self.generation > token

    def reset(self) -> None:
        self.generation = 0
        self._arrived.clear()


class Cluster:
    """One simulated SW26010Pro core group."""

    def __init__(
        self,
        arch: ArchSpec,
        fault_policy: Optional[FaultPolicy] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.arch = arch
        self.memory = MainMemory()
        self.mpe = MPE(arch)
        self.cpes: List[List[CPE]] = [
            [CPE(r, c, arch.spm_bytes) for c in range(arch.mesh_cols)]
            for r in range(arch.mesh_rows)
        ]
        #: fault plane shared by every engine of this core group
        self.fault_policy = fault_policy or FaultPolicy()
        self.retry_policy = retry_policy or RetryPolicy()
        self.dma = DMAEngine(arch, self.fault_policy, self.retry_policy)
        self.rma = RMAEngine(arch, self.cpes, self.fault_policy, self.retry_policy)
        if self.fault_policy.enabled:
            # Named streams: the DMA and RMA engines draw independently,
            # so a run with the same seed replays the same fault sequence
            # on each plane regardless of the other's traffic.
            root = FaultInjector(self.fault_policy)
            self.dma.injector = root.fork("dma")
            self.rma.injector = root.fork("rma")
        self.barrier = Barrier(arch, self.all_cpes())
        self.spawn_count = 0
        self.trace = None

    def enable_tracing(self):
        """Attach a TraceRecorder to every engine; returns it."""
        from repro.sunway.trace import TraceRecorder

        self.trace = TraceRecorder()
        self.dma.trace = self.trace
        self.rma.trace = self.trace
        return self.trace

    # -- topology -----------------------------------------------------------

    def cpe(self, rid: int, cid: int) -> CPE:
        if not (0 <= rid < self.arch.mesh_rows and 0 <= cid < self.arch.mesh_cols):
            raise MeshError(
                f"CPE coordinates ({rid},{cid}) outside "
                f"{self.arch.mesh_rows}x{self.arch.mesh_cols} mesh"
            )
        return self.cpes[rid][cid]

    def all_cpes(self) -> List[CPE]:
        return [cpe for row in self.cpes for cpe in row]

    # -- lifecycle ------------------------------------------------------------

    def reset_mesh(self) -> None:
        """Clear per-launch CPE state (SPM, clocks, counters)."""
        for cpe in self.all_cpes():
            cpe.reset()
        self.dma.reset()
        self.rma.reset()
        self.barrier.reset()

    def begin_spawn(self) -> None:
        """Model athread_spawn: per-launch startup cost on every CPE."""
        self.spawn_count += 1
        cost = self.arch.spawn_us * 1e-6
        for cpe in self.all_cpes():
            cpe.advance(cost)

    def elapsed(self) -> float:
        """Kernel wall time so far: the slowest CPE's clock."""
        return max(cpe.clock for cpe in self.all_cpes())

    # -- reporting ---------------------------------------------------------------

    def total_stats(self) -> dict:
        totals: dict = {}
        for cpe in self.all_cpes():
            for key, value in cpe.stats.items():
                totals[key] = totals.get(key, 0) + value
        totals["spawns"] = self.spawn_count
        return totals
