"""Architecture specifications.

All hardware constants live here, in one validated, immutable dataclass.
The SW26010Pro numbers are assembled from the paper (§2.1: 8×8 CPE mesh,
256 KB SPM, RMA broadcasts new in this generation) and from the public
record on the Sunway processor family; the theoretical peak the paper may
not disclose (§8.1) is reconstructed as

    64 CPEs × 2.25 GHz × 16 double-precision flops/cycle = 2304 Gflops

per core group, which is consistent with every percentage the paper does
report (90.14% peak at 15360³ ⇒ ≈ 2077 Gflops; xMath's 93.53% best ⇒
≈ 2155 Gflops).

The *cost-model* fields (bandwidths, startup latencies) are calibration
parameters for the timed simulation.  They were fitted once against the
four breakdown averages of Fig. 13 (84.89 / 240.39 / 1052.94 / 1849.06
Gflops) and then left untouched for every other experiment — the same
methodology the paper applies to its own analytical tile-size model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MicroKernelShape:
    """An arch's micro-kernel shape contract (§7.2).

    The default is the vendor 64×64×32 contract on SW26010Pro; every
    registered architecture carries its own default shape, and kernel
    backends may generate kernels for other legal shapes."""

    mt: int = 64
    nt: int = 64
    kt: int = 32

    @property
    def flops(self) -> int:
        """Floating-point operations per kernel invocation (2·mt·nt·kt)."""
        return 2 * self.mt * self.nt * self.kt

    @property
    def c_bytes(self) -> int:
        return self.mt * self.nt * 8

    @property
    def a_bytes(self) -> int:
        return self.mt * self.kt * 8

    @property
    def b_bytes(self) -> int:
        return self.kt * self.nt * 8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mt}x{self.nt}x{self.kt}"


@dataclass(frozen=True)
class ArchSpec:
    """One Sunway core group (cluster) plus its cost model."""

    name: str = "SW26010Pro"
    mesh_rows: int = 8
    mesh_cols: int = 8
    spm_bytes: int = 256 * 1024
    cpe_freq_ghz: float = 2.25
    # Vector pipelines: 512-bit SIMD (8 doubles) fused multiply-add.
    cpe_flops_per_cycle: float = 16.0
    # Scalar, non-unrolled code as swgcc compiles the naive loop nest;
    # calibrated so the DMA-only baseline reproduces Fig. 13's flat
    # 84.89 Gflops.
    naive_flops_per_cycle: float = 0.59
    # Fraction of per-CPE peak the vendor assembly kernel sustains.
    kernel_efficiency: float = 0.97
    # Whether the RMA fabric exists (SW26010 predecessor lacks SPM RMA).
    rma_supported: bool = True

    # ---- cost model (calibrated once against Fig. 13) ------------------
    # Main-memory DMA: shared channel for the whole mesh (DDR4-class
    # aggregate bandwidth plus a small per-message engine startup).
    dma_bandwidth_gbs: float = 48.0
    dma_startup_us: float = 0.12
    # RMA broadcast: independent channel per mesh row and per mesh column.
    rma_bandwidth_gbs: float = 12.0
    rma_startup_us: float = 0.5
    # Mesh barrier (synch()) cost.
    sync_us: float = 0.05
    # athread_spawn + athread_join per kernel launch.
    spawn_us: float = 45.0
    # MPE scalar element-wise processing rate (elements / second) — used by
    # the xMath-based fusion baselines that run prologue/epilogue on MPE.
    mpe_elementwise_rate: float = 1.25e8
    # CPE vectorised element-wise rate (elements / second) for fused
    # prologue/epilogue tiles in SPM.
    cpe_elementwise_rate: float = 2.0e9

    # ---- register file (parametric kernel generation, §7.2) -------------
    # Doubles per SIMD vector register (512-bit pipelines → 8) and the
    # number of architectural vector registers a generated register-tiled
    # kernel may allocate accumulators/operands from.
    simd_doubles: int = 8
    vector_registers: int = 32

    micro_kernel: MicroKernelShape = field(default_factory=MicroKernelShape)

    def __post_init__(self) -> None:
        if self.mesh_rows <= 0 or self.mesh_cols <= 0:
            raise ConfigurationError("mesh dimensions must be positive")
        if self.mesh_rows != self.mesh_cols:
            raise ConfigurationError(
                "the RMA strip-mining scheme requires a square CPE mesh"
            )
        if self.spm_bytes <= 0:
            raise ConfigurationError("SPM capacity must be positive")
        for attr in ("cpe_freq_ghz", "cpe_flops_per_cycle", "kernel_efficiency"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")
        if not 0 < self.kernel_efficiency <= 1:
            raise ConfigurationError("kernel_efficiency must be in (0, 1]")
        if self.simd_doubles <= 0 or self.vector_registers <= 0:
            raise ConfigurationError(
                "simd_doubles and vector_registers must be positive"
            )

    # ---- derived quantities ------------------------------------------------

    @property
    def num_cpes(self) -> int:
        return self.mesh_rows * self.mesh_cols

    @property
    def cpe_peak_gflops(self) -> float:
        return self.cpe_freq_ghz * self.cpe_flops_per_cycle

    @property
    def peak_gflops(self) -> float:
        """Theoretical double-precision peak of the core group."""
        return self.num_cpes * self.cpe_peak_gflops

    def kernel_time_s(self, mt: int, nt: int, kt: int) -> float:
        """Seconds one micro-kernel invocation takes on one CPE.

        The sustained fraction of peak depends on the reduction depth:
        the C register tile loads/stores and the pipeline fill/drain
        amortise over ``kt`` sweeps (the ``kt/(kt+drain)`` shape of the
        §3.1 model).  ``kernel_efficiency`` is calibrated at the
        reference depth 32, so the 64×64×32 vendor kernel is unaffected
        and shallower hypothetical kernels pay their real cost."""
        flops = 2.0 * mt * nt * kt
        drain = 2.0
        depth_factor = (kt / (kt + drain)) / (32.0 / (32.0 + drain))
        efficiency = self.kernel_efficiency * min(1.0, depth_factor)
        return flops / (self.cpe_peak_gflops * 1e9 * efficiency)

    def naive_time_s(self, mt: int, nt: int, kt: int) -> float:
        """Seconds the scalar (``--no-use-asm``) loop nest takes."""
        flops = 2.0 * mt * nt * kt
        return flops / (self.cpe_freq_ghz * 1e9 * self.naive_flops_per_cycle)

    def dma_time_s(self, nbytes: int, run_bytes: int = 0) -> float:
        """Channel occupancy of one DMA message.

        Strided messages whose contiguous runs are shorter than the DDR
        burst (128 B — the ``-faddress_align=128`` granularity) waste a
        fraction of every burst; ``run_bytes = len × 8`` applies that
        penalty.  The shapes the paper uses (len ≥ 32 doubles) are
        unaffected."""
        effective = nbytes
        if 0 < run_bytes < 128:
            effective = nbytes * 128 / run_bytes
        return self.dma_startup_us * 1e-6 + effective / (
            self.dma_bandwidth_gbs * 1e9
        )

    def rma_time_s(self, nbytes: int) -> float:
        """Channel occupancy of one RMA broadcast (pipelined multicast)."""
        return self.rma_startup_us * 1e-6 + nbytes / (self.rma_bandwidth_gbs * 1e9)

    # ---- convenience -------------------------------------------------------

    def scaled(self, **overrides) -> "ArchSpec":
        """A copy with selected fields overridden (ablation helper)."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by the CLI and reports."""
        return {
            "name": self.name,
            "mesh": f"{self.mesh_rows}x{self.mesh_cols}",
            "spm_kb": self.spm_bytes // 1024,
            "peak_gflops": round(self.peak_gflops, 2),
            "micro_kernel": str(self.micro_kernel),
            "rma": self.rma_supported,
            "simd_doubles": self.simd_doubles,
            "vector_registers": self.vector_registers,
        }


#: The paper's target: one core group of SW26010Pro (§2.1, Fig. 1).
SW26010PRO = ArchSpec()

#: The predecessor used by the manual approaches the paper compares
#: against: 64 KB SPM and no SPM-level RMA (register communication only).
SW26010 = ArchSpec(
    name="SW26010",
    spm_bytes=64 * 1024,
    cpe_freq_ghz=1.45,
    rma_supported=False,
    micro_kernel=MicroKernelShape(32, 32, 32),
)

#: A down-scaled configuration for fast functional tests: a 2×2 mesh with
#: an 8×8×4 micro kernel, so a full mesh chunk is only 16×16×8 elements.
TOY_ARCH = ArchSpec(
    name="toy",
    mesh_rows=2,
    mesh_cols=2,
    spm_bytes=8 * 1024,
    micro_kernel=MicroKernelShape(8, 8, 4),
)

#: Hypothetical: an SW26010Pro core group behind HBM-class memory.  The
#: compute side is unchanged, so kernel-bound shapes match SW26010Pro
#: bit-for-bit while DMA-bound shapes expose the bandwidth headroom.
SW26010PRO_HBM = ArchSpec(
    name="SW26010Pro-HBM",
    dma_bandwidth_gbs=192.0,
    dma_startup_us=0.08,
)

#: Hypothetical: a cost-reduced part with half the SPM.  The vendor
#: 64×64×32 plan does not fit 128 KB (the nine-buffer full pipeline
#: needs ~160 KB), so the default contract shallows the reduction to
#: 64×64×16 (~96 KB with RMA broadcasts and double buffering).
SW26010PRO_LITE = ArchSpec(
    name="SW26010Pro-Lite",
    spm_bytes=128 * 1024,
    micro_kernel=MicroKernelShape(64, 64, 16),
)


# ---------------------------------------------------------------------------
# Architecture registry
# ---------------------------------------------------------------------------

#: Registered architectures, keyed by ``spec.name.lower()``.  The CLI
#: (``--arch``) and the serve protocol resolve names through this table,
#: so registering a spec makes it reachable end to end.
_ARCH_REGISTRY: Dict[str, ArchSpec] = {}


def register_arch(spec: ArchSpec) -> ArchSpec:
    """Register ``spec`` under ``spec.name.lower()`` (idempotent).

    Re-registering the same name with a *different* spec is rejected —
    cache keys and tuning records embed the arch parameters, so silently
    redefining a name would alias incompatible artifacts."""
    key = spec.name.lower()
    existing = _ARCH_REGISTRY.get(key)
    if existing is not None and existing != spec:
        raise ConfigurationError(
            f"arch name {key!r} is already registered with different "
            f"parameters"
        )
    _ARCH_REGISTRY[key] = spec
    return spec


def get_arch(name: str) -> ArchSpec:
    """Look up a registered architecture by (case-insensitive) name."""
    try:
        return _ARCH_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(arch_names())
        raise ConfigurationError(
            f"unknown arch {name!r} (registered: {known})"
        ) from None


def arch_names() -> Tuple[str, ...]:
    """Registered architecture names, in registration order."""
    return tuple(_ARCH_REGISTRY)


def all_archs() -> Dict[str, ArchSpec]:
    """Name → spec snapshot of the registry."""
    return dict(_ARCH_REGISTRY)


for _spec in (SW26010PRO, SW26010, TOY_ARCH, SW26010PRO_HBM, SW26010PRO_LITE):
    register_arch(_spec)
del _spec
