"""SCoP extraction: semantic info → polyhedral statements.

Builds, for each assignment statement, its iteration domain (an
:class:`~repro.poly.iset.IntegerSet` over the enclosing loop variables)
and its read/write access relations — the representation §2.2 feeds to
the dependence analysis.  The compiler's GEMM pipeline recognises its
patterns at a higher level (:mod:`repro.frontend.patterns`), but the SCoP
form is what makes the frontend honest: parallelism and tilability are
*derived* from these objects, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SemanticError
from repro.frontend.cast import CArrayRef, CAssign, CExpr, walk_exprs
from repro.frontend.semantic import FunctionInfo, StatementInfo
from repro.poly.affine import AffExpr
from repro.poly.dependences import Access, DependenceSummary, analyze_statement
from repro.poly.imap import AffineMap
from repro.poly.iset import Constraint, IntegerSet, ge, lt
from repro.poly.space import Space


@dataclass
class ScopStatement:
    """One polyhedral statement."""

    name: str
    info: StatementInfo
    domain: IntegerSet
    accesses: List[Access] = field(default_factory=list)

    def summary(self) -> DependenceSummary:
        return analyze_statement(self.domain, self.accesses, self.domain.space.dims)


@dataclass
class Scop:
    """A static control part: the function's statements in order."""

    statements: List[ScopStatement]

    def statement(self, name: str) -> ScopStatement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(name)


def _domain_for(stmt: StatementInfo, name: str) -> IntegerSet:
    space = Space(name, stmt.loop_vars)
    constraints: List[Constraint] = []
    for loop in stmt.loops:
        constraints.append(ge(AffExpr.var(loop.var), loop.lower))
        constraints.append(lt(AffExpr.var(loop.var), loop.upper))
    return IntegerSet(space, constraints)


def _accesses_for(
    stmt: StatementInfo, info: FunctionInfo, space: Space, analyzer
) -> List[Access]:
    accesses: List[Access] = []
    loop_vars = {l.var: l for l in stmt.loops}

    def array_space(name: str, rank: int) -> Space:
        return Space(name, tuple(f"d{i}" for i in range(rank)))

    # The write access.
    target = stmt.assign.target
    accesses.append(
        Access(
            target.array,
            AffineMap.access(
                space,
                array_space(target.array, len(stmt.target_subscripts)),
                list(stmt.target_subscripts),
            ),
            True,
        )
    )
    # Compound assignments read their target implicitly.
    if stmt.assign.op in ("+=", "-=", "*="):
        accesses.append(
            Access(
                target.array,
                AffineMap.access(
                    space,
                    array_space(target.array, len(stmt.target_subscripts)),
                    list(stmt.target_subscripts),
                ),
                False,
            )
        )
    # Reads on the right-hand side.
    for expr in walk_exprs(stmt.assign.value):
        if isinstance(expr, CArrayRef):
            subscripts = tuple(
                analyzer.to_affine(ix, loop_vars) for ix in expr.indices
            )
            accesses.append(
                Access(
                    expr.array,
                    AffineMap.access(
                        space, array_space(expr.array, len(subscripts)), list(subscripts)
                    ),
                    False,
                )
            )
    return accesses


def extract_scop(info: FunctionInfo) -> Scop:
    """Build the SCoP of an analysed function."""
    from repro.frontend.semantic import SemanticAnalyzer

    analyzer = SemanticAnalyzer(info.function)
    analyzer.info = info  # reuse the populated symbol table
    statements: List[ScopStatement] = []
    for index, stmt in enumerate(info.statements):
        name = f"S{index}"
        domain = _domain_for(stmt, name)
        accesses = _accesses_for(stmt, info, domain.space, analyzer)
        statements.append(ScopStatement(name, stmt, domain, accesses))
    if not statements:
        raise SemanticError("no statements to extract")
    return Scop(statements)
