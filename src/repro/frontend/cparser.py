"""Recursive-descent parser for the supported C subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend.cast import (
    CArrayRef,
    CAssign,
    CBinary,
    CCall,
    CDecl,
    CExpr,
    CFloatLit,
    CFor,
    CFunction,
    CIdent,
    CIf,
    CIntLit,
    CParam,
    CStmt,
    CTranslationUnit,
    CUnary,
)
from repro.frontend.lexer import Token, tokenize

_TYPES = ("void", "int", "double", "float")

# Binary operators by increasing precedence tier.
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message}, got {tok.kind} {tok.text!r}", tok.line, tok.column)

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.current
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            tok = self.current
            self.pos += 1
            return tok
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            raise self._error(f"expected {text or kind}")
        return tok

    # -- top level ------------------------------------------------------------

    def parse_translation_unit(self) -> CTranslationUnit:
        functions: List[CFunction] = []
        while not self.at("eof"):
            functions.append(self.parse_function())
        if not functions:
            raise ParseError("empty translation unit")
        return CTranslationUnit(functions)

    def parse_function(self) -> CFunction:
        self.accept("keyword", "const")
        rtype = self.expect("keyword").text
        if rtype not in _TYPES:
            raise self._error(f"unknown return type {rtype!r}")
        name = self.expect("ident").text
        line = self.tokens[self.pos - 1].line
        self.expect("punct", "(")
        params: List[CParam] = []
        if not self.at("punct", ")"):
            params.append(self.parse_param())
            while self.accept("punct", ","):
                params.append(self.parse_param())
        self.expect("punct", ")")
        self.expect("punct", "{")
        body = self.parse_block_body()
        return CFunction(name, rtype, params, body, line)

    def parse_param(self) -> CParam:
        self.accept("keyword", "const")
        ctype_tok = self.expect("keyword")
        if ctype_tok.text not in ("int", "double", "float"):
            raise self._error(f"unsupported parameter type {ctype_tok.text!r}")
        name = self.expect("ident").text
        dims: List[CExpr] = []
        while self.accept("punct", "["):
            dims.append(self.parse_expression())
            self.expect("punct", "]")
        return CParam(ctype_tok.text, name, tuple(dims))

    # -- statements ---------------------------------------------------------------

    def parse_block_body(self) -> List[CStmt]:
        stmts: List[CStmt] = []
        while not self.accept("punct", "}"):
            if self.at("eof"):
                raise self._error("unterminated block")
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self) -> CStmt:
        if self.at("keyword", "for"):
            return self.parse_for()
        if self.at("keyword", "if"):
            return self.parse_if()
        if self.at("keyword", "int") or self.at("keyword", "double") or self.at(
            "keyword", "float"
        ):
            return self.parse_decl()
        if self.accept("punct", "{"):
            # A bare compound statement flattens into its contents via a
            # zero-iteration-overhead wrapper: represent as CIf(true)?  No:
            # simply parse and wrap in an always-true if to keep structure.
            body = self.parse_block_body()
            return CIf(CIntLit(1), body)
        return self.parse_assignment()

    def parse_decl(self) -> CDecl:
        ctype = self.expect("keyword").text
        name = self.expect("ident").text
        line = self.tokens[self.pos - 1].line
        init = None
        if self.accept("op", "="):
            init = self.parse_expression()
        self.expect("punct", ";")
        return CDecl(ctype, name, init, line)

    def parse_for(self) -> CFor:
        line = self.expect("keyword", "for").line
        self.expect("punct", "(")
        # init: "int i = lo;" or "i = lo;"
        self.accept("keyword", "int")
        var = self.expect("ident").text
        self.expect("op", "=")
        lower = self.parse_expression()
        self.expect("punct", ";")
        # condition: "i < hi" (also accepts "i <= hi - 1" forms)
        cond_var = self.expect("ident").text
        if cond_var != var:
            raise self._error(f"loop condition must test {var!r}")
        op = self.expect("op").text
        if op not in ("<", "<="):
            raise self._error("loop condition must use < or <=")
        upper = self.parse_expression()
        if op == "<=":
            upper = CBinary("+", upper, CIntLit(1))
        self.expect("punct", ";")
        # increment: i++ / ++i / i += 1 / i = i + 1
        self._parse_increment(var)
        self.expect("punct", ")")
        body = self._loop_body()
        return CFor(var, lower, upper, body, line)

    def _parse_increment(self, var: str) -> None:
        if self.accept("op", "++"):
            name = self.expect("ident").text
        else:
            name = self.expect("ident").text
            if self.accept("op", "++"):
                pass
            elif self.accept("op", "+="):
                step = self.parse_expression()
                if not (isinstance(step, CIntLit) and step.value == 1):
                    raise self._error("only unit-stride loops are supported")
            elif self.accept("op", "="):
                expr = self.parse_expression()
                ok = (
                    isinstance(expr, CBinary)
                    and expr.op == "+"
                    and isinstance(expr.lhs, CIdent)
                    and expr.lhs.name == var
                    and isinstance(expr.rhs, CIntLit)
                    and expr.rhs.value == 1
                )
                if not ok:
                    raise self._error("only unit-stride loops are supported")
            else:
                raise self._error("unsupported loop increment")
        if name != var:
            raise self._error(f"loop increment must update {var!r}")

    def _loop_body(self) -> List[CStmt]:
        if self.accept("punct", "{"):
            return self.parse_block_body()
        return [self.parse_statement()]

    def parse_if(self) -> CIf:
        line = self.expect("keyword", "if").line
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        then = self._loop_body()
        els = None
        if self.accept("keyword", "else"):
            els = self._loop_body()
        return CIf(cond, then, els, line)

    def parse_assignment(self) -> CAssign:
        target = self.parse_postfix()
        if not isinstance(target, (CArrayRef, CIdent)):
            raise self._error("assignment target must be a variable or array element")
        op_tok = self.expect("op")
        if op_tok.text not in ("=", "+=", "-=", "*="):
            raise self._error(f"unsupported assignment operator {op_tok.text!r}")
        value = self.parse_expression()
        self.expect("punct", ";")
        return CAssign(target, op_tok.text, value, op_tok.line)

    # -- expressions (precedence climbing) ----------------------------------------

    def parse_expression(self, tier: int = 0) -> CExpr:
        if tier == len(_PRECEDENCE):
            return self.parse_unary()
        expr = self.parse_expression(tier + 1)
        ops = _PRECEDENCE[tier]
        while self.current.kind == "op" and self.current.text in ops:
            op = self.expect("op").text
            rhs = self.parse_expression(tier + 1)
            expr = CBinary(op, expr, rhs, self.current.line)
        return expr

    def parse_unary(self) -> CExpr:
        if self.accept("op", "-"):
            return CUnary("-", self.parse_unary(), self.current.line)
        if self.accept("op", "!"):
            return CUnary("!", self.parse_unary(), self.current.line)
        return self.parse_postfix()

    def parse_postfix(self) -> CExpr:
        expr = self.parse_primary()
        while True:
            if self.at("punct", "["):
                if not isinstance(expr, (CIdent, CArrayRef)):
                    raise self._error("subscript of a non-array expression")
                indices = list(expr.indices) if isinstance(expr, CArrayRef) else []
                array = expr.array if isinstance(expr, CArrayRef) else expr.name
                self.expect("punct", "[")
                indices.append(self.parse_expression())
                self.expect("punct", "]")
                expr = CArrayRef(array, tuple(indices), self.current.line)
            elif self.at("punct", "(") and isinstance(expr, CIdent):
                self.expect("punct", "(")
                args: List[CExpr] = []
                if not self.at("punct", ")"):
                    args.append(self.parse_expression())
                    while self.accept("punct", ","):
                        args.append(self.parse_expression())
                self.expect("punct", ")")
                expr = CCall(expr.name, tuple(args), self.current.line)
            else:
                return expr

    def parse_primary(self) -> CExpr:
        if self.accept("punct", "("):
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        tok = self.current
        if self.accept("int"):
            return CIntLit(int(tok.text), tok.line)
        if self.accept("float"):
            return CFloatLit(float(tok.text), tok.line)
        if self.accept("ident"):
            return CIdent(tok.text, tok.line)
        raise self._error("expected an expression")


def parse_c(source: str) -> CTranslationUnit:
    """Parse C source into a translation unit."""
    return Parser(tokenize(source)).parse_translation_unit()
