"""Tokeniser for the supported C subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import LexError

KEYWORDS = {
    "void", "int", "double", "float", "for", "if", "else", "return", "const",
}

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "++", "--", "+=", "-=", "*=", "/=", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
]

PUNCTUATION = ["(", ")", "[", "]", "{", "}", ",", ";"]


@dataclass(frozen=True)
class Token:
    kind: str  # "ident", "keyword", "int", "float", "op", "punct", "eof"
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class Lexer:
    """A straightforward hand-rolled scanner with line/column tracking."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated block comment", self.line, self.column)
                self._advance(2)
            elif ch == "#":
                # Preprocessor lines are ignored (the subset needs none).
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    # -- scanning ---------------------------------------------------------------

    def tokens(self) -> List[Token]:
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind == "eof":
                return result

    def next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token("eof", "", self.line, self.column)
        line, column = self.line, self.column
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            text = self._scan_ident()
            kind = "keyword" if text in KEYWORDS else "ident"
            return Token(kind, text, line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            text, is_float = self._scan_number()
            return Token("float" if is_float else "int", text, line, column)
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, column)
        if ch in PUNCTUATION:
            self._advance()
            return Token("punct", ch, line, column)
        raise LexError(f"unexpected character {ch!r}", line, column)

    def _scan_ident(self) -> str:
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        return self.source[start : self.pos]

    def _scan_number(self) -> tuple:
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE":
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            if not self._peek().isdigit():
                raise LexError("malformed exponent", self.line, self.column)
            while self._peek().isdigit():
                self._advance()
        return self.source[start : self.pos], is_float


def tokenize(source: str) -> List[Token]:
    """All tokens of ``source`` including the trailing EOF token."""
    return Lexer(source).tokens()
