"""Pattern recognition: SCoP → GemmSpec.

The compiler accepts exactly the input class the paper evaluates:

* **GEMM** — a 3-deep canonical nest whose statement is
  ``C[i][j] += (alpha·) A[i][k] * B[k][j]`` (or the ``C[i][j] = C[i][j] + …``
  spelling), Fig. 2a;
* **batched GEMM** — the same with a leading batch loop and rank-3
  arrays, Fig. 3;
* **fusion with a prologue** — an element-wise statement
  ``A[i][k] = f(A[i][k])`` textually before the GEMM (Fig. 12a);
* **fusion with an epilogue** — ``C[i][j] = f(C[i][j])`` after it
  (Fig. 12b).

Everything is verified structurally (loop roles are inferred from the
subscripts, not from loop order) and cross-checked against the array
extents (``A[M][K]``, ``B[K][N]``, ``C[M][N]``).  The recogniser then
emits the :class:`~repro.core.spec.GemmSpec` and the matching
:class:`~repro.core.options.CompilerOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import PatternError
from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.frontend.cast import (
    CArrayRef,
    CBinary,
    CCall,
    CExpr,
    CFloatLit,
    CIdent,
    CIntLit,
    CUnary,
)
from repro.frontend.cparser import parse_c
from repro.frontend.scop import Scop, ScopStatement, extract_scop
from repro.frontend.semantic import FunctionInfo, analyze_function
from repro.poly.affine import AffExpr


@dataclass
class GemmMatch:
    """The recognised GEMM statement with its role bindings."""

    statement: ScopStatement
    a_name: str
    b_name: str
    c_name: str
    i_var: str
    j_var: str
    k_var: str
    batch_var: Optional[str]
    m_param: str
    n_param: str
    k_param: str
    batch_param: Optional[str]
    alpha_scalars: Tuple[str, ...]
    trans_a: bool = False
    trans_b: bool = False


def _flatten_product(expr: CExpr) -> List[CExpr]:
    if isinstance(expr, CBinary) and expr.op == "*":
        return _flatten_product(expr.lhs) + _flatten_product(expr.rhs)
    return [expr]


def _subscript_vars(ref: CArrayRef) -> Optional[Tuple[str, ...]]:
    names: List[str] = []
    for index in ref.indices:
        if isinstance(index, CIdent):
            names.append(index.name)
        else:
            return None
    return tuple(names)


def _same_ref(a: CArrayRef, b: CArrayRef) -> bool:
    return a.array == b.array and _subscript_vars(a) == _subscript_vars(b)


def _single_param_bound(lower: AffExpr, upper: AffExpr) -> Optional[str]:
    """``0 <= var < P`` with P a bare parameter."""
    if not (lower.is_constant() and lower.constant_value() == 0):
        return None
    if upper.is_single_var():
        return upper.single_var()
    return None


class PatternRecognizer:
    def __init__(self, scop: Scop, info: FunctionInfo) -> None:
        self.scop = scop
        self.info = info

    # -- GEMM recognition -------------------------------------------------

    def find_gemm(self) -> Tuple[int, GemmMatch]:
        """Locate the (unique) GEMM statement; returns its index + match."""
        matches: List[Tuple[int, GemmMatch]] = []
        for index, stmt in enumerate(self.scop.statements):
            match = self._match_gemm(stmt)
            if match is not None:
                matches.append((index, match))
        if not matches:
            raise PatternError(
                "no GEMM statement found: expected "
                "C[i][j] += (alpha*) A[i][k] * B[k][j] inside a canonical nest"
            )
        if len(matches) > 1:
            raise PatternError("multiple GEMM statements found; supply one")
        return matches[0]

    def _match_gemm(self, stmt: ScopStatement) -> Optional[GemmMatch]:
        assign = stmt.info.assign
        target = assign.target
        if not isinstance(target, CArrayRef):
            return None
        target_vars = _subscript_vars(target)
        if target_vars is None:
            return None
        depth = len(stmt.info.loops)
        if depth not in (3, 4):
            return None
        batched = depth == 4
        if len(target_vars) != (3 if batched else 2):
            return None

        # Normalise to "accumulate(product)".
        if assign.op == "+=":
            product = assign.value
        elif assign.op == "=":
            value = assign.value
            if not (isinstance(value, CBinary) and value.op == "+"):
                return None
            if isinstance(value.lhs, CArrayRef) and _same_ref(value.lhs, target):
                product = value.rhs
            elif isinstance(value.rhs, CArrayRef) and _same_ref(value.rhs, target):
                product = value.lhs
            else:
                return None
        else:
            return None

        factors = _flatten_product(product)
        arrays = [f for f in factors if isinstance(f, CArrayRef)]
        scalars = [f for f in factors if isinstance(f, CIdent)]
        others = [
            f for f in factors if not isinstance(f, (CArrayRef, CIdent))
        ]
        if len(arrays) != 2 or others:
            return None
        sub0, sub1 = _subscript_vars(arrays[0]), _subscript_vars(arrays[1])
        if sub0 is None or sub1 is None:
            return None

        if batched:
            b_var = target_vars[0]
            if sub0[0] != b_var or sub1[0] != b_var:
                return None
            i_var, j_var = target_vars[1], target_vars[2]
            core0, core1 = sub0[1:], sub1[1:]
        else:
            b_var = None
            i_var, j_var = target_vars
            core0, core1 = sub0, sub1

        loop_vars = set(stmt.info.loop_vars)
        k_candidates = loop_vars - {i_var, j_var} - ({b_var} if b_var else set())
        if len(k_candidates) != 1:
            return None
        k_var = next(iter(k_candidates))

        # Assign A/B roles by index pattern; transposed operands access
        # A[k][i] / B[j][k] (§2: the other GEMM variants).
        def role(core: Tuple[str, ...]) -> Optional[str]:
            if core == (i_var, k_var):
                return "A"
            if core == (k_var, i_var):
                return "At"
            if core == (k_var, j_var):
                return "B"
            if core == (j_var, k_var):
                return "Bt"
            return None

        roles = {role(core0): arrays[0], role(core1): arrays[1]}
        if None in roles:
            return None
        a_key = "A" if "A" in roles else ("At" if "At" in roles else None)
        b_key = "B" if "B" in roles else ("Bt" if "Bt" in roles else None)
        if a_key is None or b_key is None or len(roles) != 2:
            return None
        trans_a = a_key == "At"
        trans_b = b_key == "Bt"
        a_ref, b_ref = roles[a_key], roles[b_key]

        # Parameter names from the loop bounds.
        bounds: Dict[str, Optional[str]] = {}
        for loop in stmt.info.loops:
            bounds[loop.var] = _single_param_bound(loop.lower, loop.upper)
        if any(bounds[v] is None for v in (i_var, j_var, k_var)):
            raise PatternError(
                "GEMM loop bounds must be single integer parameters (0 <= x < P)"
            )
        if b_var is not None and bounds[b_var] is None:
            raise PatternError("batch loop bound must be a single parameter")

        match = GemmMatch(
            statement=stmt,
            a_name=a_ref.array,
            b_name=b_ref.array,
            c_name=target.array,
            i_var=i_var,
            j_var=j_var,
            k_var=k_var,
            batch_var=b_var,
            m_param=bounds[i_var],
            n_param=bounds[j_var],
            k_param=bounds[k_var],
            batch_param=bounds[b_var] if b_var else None,
            alpha_scalars=tuple(s.name for s in scalars),
            trans_a=trans_a,
            trans_b=trans_b,
        )
        self._check_array_extents(match)
        return match

    def _check_array_extents(self, match: GemmMatch) -> None:
        a_dims = (
            (match.k_param, match.m_param) if match.trans_a
            else (match.m_param, match.k_param)
        )
        b_dims = (
            (match.n_param, match.k_param) if match.trans_b
            else (match.k_param, match.n_param)
        )
        expect = {
            match.a_name: a_dims,
            match.b_name: b_dims,
            match.c_name: (match.m_param, match.n_param),
        }
        for name, (rows, cols) in expect.items():
            array = self.info.arrays.get(name)
            if array is None:
                raise PatternError(f"array {name!r} is not a parameter")
            dims = array.dims
            if match.batch_param is not None:
                if array.rank != 3 or not dims[0].is_single_var() or dims[0].single_var() != match.batch_param:
                    raise PatternError(
                        f"batched array {name!r} must be declared "
                        f"[{match.batch_param}][…][…]"
                    )
                dims = dims[1:]
            if array.rank - (1 if match.batch_param else 0) != 2:
                raise PatternError(f"array {name!r} must be rank-2 (plus batch)")
            for dim, param in zip(dims, (rows, cols)):
                if not (dim.is_single_var() and dim.single_var() == param):
                    raise PatternError(
                        f"array {name!r} is declared with extent {dim}, but the "
                        f"loop structure implies {param}"
                    )

    # -- fusion recognition ------------------------------------------------------

    def _match_elementwise(
        self, stmt: ScopStatement
    ) -> Optional[Tuple[str, str, Tuple[str, ...]]]:
        """``X[v...] = f(X[v...])`` — returns (array, func, vars)."""
        assign = stmt.info.assign
        if assign.op != "=":
            return None
        target = assign.target
        if not isinstance(target, CArrayRef):
            return None
        value = assign.value
        if not (isinstance(value, CCall) and len(value.args) == 1):
            return None
        arg = value.args[0]
        if not (isinstance(arg, CArrayRef) and _same_ref(arg, target)):
            return None
        names = _subscript_vars(target)
        if names is None:
            return None
        return target.array, value.func, names

    def recognize(self) -> Tuple[GemmSpec, CompilerOptions]:
        gemm_index, match = self.find_gemm()
        prologue: Optional[str] = None
        epilogue: Optional[str] = None
        for index, stmt in enumerate(self.scop.statements):
            if index == gemm_index:
                continue
            elementwise = self._match_elementwise(stmt)
            if elementwise is None:
                raise PatternError(
                    f"statement {stmt.name} is neither the GEMM nor a "
                    "supported element-wise prologue/epilogue"
                )
            array, func, _ = elementwise
            if index < gemm_index:
                if array != match.a_name:
                    raise PatternError(
                        "the fused prologue must transform the GEMM's A input"
                    )
                if prologue is not None:
                    raise PatternError("multiple prologue statements")
                prologue = func
            else:
                if array != match.c_name:
                    raise PatternError(
                        "the fused epilogue must transform the GEMM's C output"
                    )
                if epilogue is not None:
                    raise PatternError("multiple epilogue statements")
                epilogue = func
        if prologue and epilogue:
            raise PatternError(
                "fusing both a prologue and an epilogue needs a smaller "
                "assembly kernel shape (§7.3) and is not supported"
            )

        spec = GemmSpec(
            m_param=match.m_param,
            n_param=match.n_param,
            k_param=match.k_param,
            batch_param=match.batch_param,
            a_name=match.a_name,
            b_name=match.b_name,
            c_name=match.c_name,
            has_alpha=bool(match.alpha_scalars) or True,
            prologue_func=prologue,
            epilogue_func=epilogue,
            trans_a=match.trans_a,
            trans_b=match.trans_b,
        )
        fusion = "prologue" if prologue else ("epilogue" if epilogue else "none")
        option_kwargs: Dict[str, object] = {
            "batch": match.batch_param is not None,
            "fusion": fusion,
        }
        if prologue:
            option_kwargs["prologue_func"] = prologue
        if epilogue:
            option_kwargs["epilogue_func"] = epilogue
        return spec, CompilerOptions(**option_kwargs)


def extract_spec(
    source: str,
    function: Optional[str] = None,
    return_options: bool = False,
):
    """C source → :class:`GemmSpec` (and options when requested)."""
    unit = parse_c(source)
    cfunc = unit.function(function) if function else unit.functions[0]
    info = analyze_function(cfunc)
    scop = extract_scop(info)
    spec, options = PatternRecognizer(scop, info).recognize()
    if return_options:
        return spec, options
    return spec
