"""Semantic analysis of the parsed C subset.

Checks the properties the polyhedral extraction relies on and builds the
symbol table:

* every array parameter's dimensions are scalar ``int`` parameters;
* loops are canonical (verified syntactically by the parser) and their
  bounds are affine in enclosing loop variables and scalar parameters;
* every subscript is affine;
* only calls to known element-wise functions appear in right-hand sides.

The result (:class:`FunctionInfo`) carries the affine forms of all bounds
and subscripts, expressed with :class:`~repro.poly.affine.AffExpr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError
from repro.codegen.elementwise import available_functions
from repro.frontend.cast import (
    CArrayRef,
    CAssign,
    CBinary,
    CCall,
    CDecl,
    CExpr,
    CFloatLit,
    CFor,
    CFunction,
    CIdent,
    CIf,
    CIntLit,
    CStmt,
    CUnary,
)
from repro.poly.affine import AffExpr, aff_const, aff_var


@dataclass
class ArrayInfo:
    name: str
    ctype: str
    dims: Tuple[AffExpr, ...]  # symbolic extents

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class LoopInfo:
    var: str
    lower: AffExpr
    upper: AffExpr  # exclusive
    depth: int


@dataclass
class StatementInfo:
    """One assignment statement in its loop context."""

    assign: CAssign
    loops: List[LoopInfo]
    #: affine subscripts of the target array reference
    target_subscripts: Tuple[AffExpr, ...]

    @property
    def loop_vars(self) -> Tuple[str, ...]:
        return tuple(l.var for l in self.loops)


@dataclass
class FunctionInfo:
    function: CFunction
    scalars: Dict[str, str] = field(default_factory=dict)  # name -> ctype
    arrays: Dict[str, ArrayInfo] = field(default_factory=dict)
    statements: List[StatementInfo] = field(default_factory=list)

    def int_params(self) -> List[str]:
        return [n for n, t in self.scalars.items() if t == "int"]

    def double_params(self) -> List[str]:
        return [n for n, t in self.scalars.items() if t in ("double", "float")]


class SemanticAnalyzer:
    def __init__(self, function: CFunction) -> None:
        self.function = function
        self.info = FunctionInfo(function)
        self._known_calls = set(available_functions())

    # -- affine conversion --------------------------------------------------

    def to_affine(self, expr: CExpr, loop_vars: Dict[str, LoopInfo]) -> AffExpr:
        """Convert an index/bound expression to quasi-affine form."""
        if isinstance(expr, CIntLit):
            return aff_const(expr.value)
        if isinstance(expr, CIdent):
            name = expr.name
            if name in loop_vars or name in self.info.scalars:
                return aff_var(name)
            raise SemanticError(
                f"line {expr.line}: {name!r} is not a loop variable or "
                "integer parameter"
            )
        if isinstance(expr, CUnary) and expr.op == "-":
            return -self.to_affine(expr.operand, loop_vars)
        if isinstance(expr, CBinary):
            if expr.op == "+":
                return self.to_affine(expr.lhs, loop_vars) + self.to_affine(
                    expr.rhs, loop_vars
                )
            if expr.op == "-":
                return self.to_affine(expr.lhs, loop_vars) - self.to_affine(
                    expr.rhs, loop_vars
                )
            if expr.op == "*":
                lhs = self.to_affine(expr.lhs, loop_vars)
                rhs = self.to_affine(expr.rhs, loop_vars)
                if lhs.is_constant():
                    return rhs * lhs.constant_value()
                if rhs.is_constant():
                    return lhs * rhs.constant_value()
                raise SemanticError(
                    f"line {expr.line}: non-affine product in index expression"
                )
            if expr.op == "/":
                rhs = self.to_affine(expr.rhs, loop_vars)
                if not rhs.is_constant() or rhs.constant_value() <= 0:
                    raise SemanticError(
                        f"line {expr.line}: division by a non-constant"
                    )
                return self.to_affine(expr.lhs, loop_vars).floordiv(
                    rhs.constant_value()
                )
            if expr.op == "%":
                rhs = self.to_affine(expr.rhs, loop_vars)
                if not rhs.is_constant() or rhs.constant_value() <= 0:
                    raise SemanticError(f"line {expr.line}: modulo by non-constant")
                return self.to_affine(expr.lhs, loop_vars).mod(rhs.constant_value())
        raise SemanticError(
            f"expression at line {getattr(expr, 'line', 0)} is not affine"
        )

    # -- analysis ------------------------------------------------------------

    def analyze(self) -> FunctionInfo:
        self._collect_params()
        self._walk(self.function.body, [])
        if not self.info.statements:
            raise SemanticError(
                f"function {self.function.name!r} contains no assignment statements"
            )
        return self.info

    def _collect_params(self) -> None:
        for param in self.function.params:
            if param.is_array:
                continue
            self.info.scalars[param.name] = param.ctype
        for param in self.function.params:
            if not param.is_array:
                continue
            dims: List[AffExpr] = []
            for dim in param.dims:
                aff = self.to_affine(dim, {})
                dims.append(aff)
            self.info.arrays[param.name] = ArrayInfo(param.name, param.ctype, tuple(dims))

    def _walk(self, stmts: List[CStmt], loops: List[LoopInfo]) -> None:
        loop_vars = {l.var: l for l in loops}
        for stmt in stmts:
            if isinstance(stmt, CFor):
                if stmt.var in loop_vars or stmt.var in self.info.scalars:
                    raise SemanticError(
                        f"line {stmt.line}: loop variable {stmt.var!r} shadows "
                        "an existing name"
                    )
                lower = self.to_affine(stmt.lower, loop_vars)
                upper = self.to_affine(stmt.upper, loop_vars)
                info = LoopInfo(stmt.var, lower, upper, len(loops))
                self._walk(stmt.body, loops + [info])
            elif isinstance(stmt, CAssign):
                self._check_assign(stmt, loops)
            elif isinstance(stmt, CIf):
                # Only the always-true wrapper produced for bare blocks.
                if not (isinstance(stmt.cond, CIntLit) and stmt.cond.value == 1):
                    raise SemanticError(
                        f"line {stmt.line}: data-dependent control flow is "
                        "outside the supported subset"
                    )
                self._walk(stmt.then, loops)
            elif isinstance(stmt, CDecl):
                raise SemanticError(
                    f"line {stmt.line}: local variables are not needed by the "
                    "supported GEMM patterns"
                )
            else:
                raise SemanticError(f"unsupported statement {type(stmt).__name__}")

    def _check_assign(self, assign: CAssign, loops: List[LoopInfo]) -> None:
        loop_vars = {l.var: l for l in loops}
        if not isinstance(assign.target, CArrayRef):
            raise SemanticError(
                f"line {assign.line}: assignments must target array elements"
            )
        array = self.info.arrays.get(assign.target.array)
        if array is None:
            raise SemanticError(
                f"line {assign.line}: unknown array {assign.target.array!r}"
            )
        if len(assign.target.indices) != array.rank:
            raise SemanticError(
                f"line {assign.line}: {array.name} has rank {array.rank}, "
                f"indexed with {len(assign.target.indices)} subscripts"
            )
        subscripts = tuple(
            self.to_affine(ix, loop_vars) for ix in assign.target.indices
        )
        self._check_rhs(assign.value, loop_vars)
        self.info.statements.append(StatementInfo(assign, list(loops), subscripts))

    def _check_rhs(self, expr: CExpr, loop_vars: Dict[str, LoopInfo]) -> None:
        if isinstance(expr, (CIntLit, CFloatLit)):
            return
        if isinstance(expr, CIdent):
            if expr.name in self.info.scalars:
                return
            if expr.name in loop_vars:
                return
            raise SemanticError(f"line {expr.line}: unknown identifier {expr.name!r}")
        if isinstance(expr, CUnary):
            self._check_rhs(expr.operand, loop_vars)
            return
        if isinstance(expr, CBinary):
            self._check_rhs(expr.lhs, loop_vars)
            self._check_rhs(expr.rhs, loop_vars)
            return
        if isinstance(expr, CArrayRef):
            array = self.info.arrays.get(expr.array)
            if array is None:
                raise SemanticError(f"line {expr.line}: unknown array {expr.array!r}")
            if len(expr.indices) != array.rank:
                raise SemanticError(
                    f"line {expr.line}: rank mismatch on {expr.array!r}"
                )
            for index in expr.indices:
                self.to_affine(index, loop_vars)
            return
        if isinstance(expr, CCall):
            if expr.func not in self._known_calls:
                raise SemanticError(
                    f"line {expr.line}: unknown function {expr.func!r}; "
                    f"supported element-wise functions: {sorted(self._known_calls)}"
                )
            for arg in expr.args:
                self._check_rhs(arg, loop_vars)
            return
        raise SemanticError(f"unsupported expression {type(expr).__name__}")


def analyze_function(function: CFunction) -> FunctionInfo:
    return SemanticAnalyzer(function).analyze()
