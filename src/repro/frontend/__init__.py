"""Restricted-C frontend.

The paper's programmability claim: the user writes a *naive* GEMM loop
nest in C (Fig. 2a) — no annotations, no pragmas, no library calls — and
the compiler does the rest.  This package provides that contract:

* :mod:`repro.frontend.lexer` / :mod:`repro.frontend.cparser` — tokenise
  and parse the supported C subset (function definitions with VLA array
  parameters, canonical ``for`` loops, affine subscripts, arithmetic
  expressions and calls to known element-wise functions);
* :mod:`repro.frontend.cast` — the C-level AST;
* :mod:`repro.frontend.semantic` — symbol resolution, canonical-loop and
  affine-subscript checking;
* :mod:`repro.frontend.scop` — extraction of the polyhedral statements
  (domains + access relations), the input to dependence analysis;
* :mod:`repro.frontend.patterns` — recognition of the supported compute
  patterns (GEMM, batched GEMM, quantisation prologue, activation
  epilogue) and construction of the :class:`~repro.core.spec.GemmSpec`.

Public helpers: :func:`parse_c`, :func:`extract_spec`, :func:`compile_c`.
"""

from repro.frontend.cparser import parse_c
from repro.frontend.patterns import extract_spec


def compile_c(source: str, arch=None, options=None):
    """Full front door: C source → compiled athread program."""
    from repro.core.pipeline import GemmCompiler
    from repro.sunway.arch import SW26010PRO

    spec, inferred = extract_spec(source, return_options=True)
    if options is None:
        options = inferred
    return GemmCompiler(arch or SW26010PRO, options).compile(spec)


__all__ = ["parse_c", "extract_spec", "compile_c"]
