"""AST for the supported C subset.

The subset covers what the paper's inputs need (Fig. 2a, Fig. 12a's
fused variants and the batched nest of Fig. 3):

* one or more function definitions with scalar (``int``/``double``) and
  variable-length-array parameters (``double A[M][K]``);
* canonical ``for`` loops: ``for (int i = lo; i < hi; i++)``;
* expression statements that are assignments (including ``+=``) whose
  subscripts are affine and whose right-hand sides are arithmetic over
  array elements, scalars, literals and calls to known element-wise
  functions.

Every node carries its source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CExpr:
    pass


@dataclass(frozen=True)
class CIntLit(CExpr):
    value: int
    line: int = 0


@dataclass(frozen=True)
class CFloatLit(CExpr):
    value: float
    line: int = 0


@dataclass(frozen=True)
class CIdent(CExpr):
    name: str
    line: int = 0


@dataclass(frozen=True)
class CUnary(CExpr):
    op: str  # "-" or "!"
    operand: CExpr
    line: int = 0


@dataclass(frozen=True)
class CBinary(CExpr):
    op: str  # + - * / % < <= > >= == != && ||
    lhs: CExpr
    rhs: CExpr
    line: int = 0


@dataclass(frozen=True)
class CArrayRef(CExpr):
    array: str
    indices: Tuple[CExpr, ...]
    line: int = 0


@dataclass(frozen=True)
class CCall(CExpr):
    func: str
    args: Tuple[CExpr, ...]
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class CStmt:
    pass


@dataclass
class CAssign(CStmt):
    """``target op value`` with op in ``=``, ``+=``, ``-=``, ``*=``."""

    target: Union[CArrayRef, CIdent]
    op: str
    value: CExpr
    line: int = 0


@dataclass
class CFor(CStmt):
    """Canonical loop ``for (int var = lo; var < hi; var++) body``."""

    var: str
    lower: CExpr
    upper: CExpr  # exclusive (condition is always ``var < upper``)
    body: List[CStmt] = field(default_factory=list)
    line: int = 0


@dataclass
class CIf(CStmt):
    cond: CExpr
    then: List[CStmt] = field(default_factory=list)
    els: Optional[List[CStmt]] = None
    line: int = 0


@dataclass
class CDecl(CStmt):
    """A local scalar declaration (``double t = e;``)."""

    ctype: str
    name: str
    init: Optional[CExpr] = None
    line: int = 0


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CParam:
    """A function parameter: scalar or VLA array."""

    ctype: str  # "int" | "double"
    name: str
    #: dimension expressions for array parameters, () for scalars;
    #: e.g. ``double A[M][K]`` -> ("M", "K") as identifier expressions
    dims: Tuple[CExpr, ...] = ()

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class CFunction:
    name: str
    return_type: str
    params: List[CParam]
    body: List[CStmt]
    line: int = 0

    def param(self, name: str) -> CParam:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def array_params(self) -> List[CParam]:
        return [p for p in self.params if p.is_array]

    def scalar_params(self) -> List[CParam]:
        return [p for p in self.params if not p.is_array]


@dataclass
class CTranslationUnit:
    functions: List[CFunction]

    def function(self, name: str) -> CFunction:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)


def walk_stmts(stmts: List[CStmt]):
    """Pre-order traversal of a statement list."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, CFor):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, CIf):
            yield from walk_stmts(stmt.then)
            if stmt.els:
                yield from walk_stmts(stmt.els)


def walk_exprs(expr: CExpr):
    """Pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, CUnary):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, CBinary):
        yield from walk_exprs(expr.lhs)
        yield from walk_exprs(expr.rhs)
    elif isinstance(expr, CArrayRef):
        for index in expr.indices:
            yield from walk_exprs(index)
    elif isinstance(expr, CCall):
        for arg in expr.args:
            yield from walk_exprs(arg)
