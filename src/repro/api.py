"""The stable public API.

Four verbs cover what four PRs of entry points (``GemmCompiler``,
``KernelService``, bare ``run_gemm``, the CLI helpers) grew organically:

* :func:`compile` — spec in, admission-verified
  :class:`~repro.runtime.program.CompiledProgram` out, served through
  the process-wide compilation service (content-addressed cache,
  single-flight, tuning-record steering when a shape is given);
* :func:`run` — execute a program (or compile-and-run a spec) on the
  simulated core group, returning a :class:`GemmResult`;
* :func:`tune` — search the tile/pipeline space for a shape class and
  persist the winning :class:`~repro.tune.records.TuningRecord`;
* :func:`verify` — run the static admission verifier over a program and
  return its :class:`~repro.verify.VerificationReport`.

Everything here is re-exported from ``repro`` itself; the old entry
points still work but emit :class:`DeprecationWarning` with a one-line
migration hint (see :mod:`repro.compat`).

Compiler options pass as keyword overrides, e.g.::

    program = api.compile(spec, enable_rma=False)
    result = api.run(program, a, b)
    record = api.tune(spec, shape=(576, 1024, 512))
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.core.options import CompilerOptions, SchedulePolicy, TileConfig
from repro.core.spec import GemmSpec
from repro.runtime.executor import ExecutionReport
from repro.runtime.executor import run_gemm as _run_gemm
from repro.runtime.program import CompiledProgram
from repro.sunway.arch import SW26010PRO, ArchSpec

__all__ = [
    "Client",
    "GemmResult",
    "compile",
    "connect",
    "run",
    "tune",
    "verify",
]

_OPTION_FIELDS = frozenset(f.name for f in dataclass_fields(CompilerOptions))


@dataclass(frozen=True)
class GemmResult:
    """What one simulated GEMM execution produced."""

    c: np.ndarray
    report: ExecutionReport

    @property
    def gflops(self) -> float:
        return self.report.gflops

    @property
    def seconds(self) -> float:
        return self.report.elapsed_seconds

    def __iter__(self) -> Iterator:
        """Unpack like the legacy ``run_gemm`` tuple: ``c, report``."""
        yield self.c
        yield self.report


def _coerce_options(
    options: Optional[CompilerOptions], overrides: dict
) -> CompilerOptions:
    unknown = set(overrides) - _OPTION_FIELDS
    if unknown:
        raise ConfigurationError(
            f"unknown compiler option(s) {sorted(unknown)}; valid options "
            f"are {sorted(_OPTION_FIELDS)}"
        )
    if "schedule" in overrides:
        # Accept the structured SchedulePolicy, a bare mode string
        # ("recipe"/"optimize"/"off"), or a {"mode", "allow", "deny"}
        # mapping — callers shouldn't need to import the dataclass.
        overrides = {
            **overrides,
            "schedule": SchedulePolicy.parse(overrides["schedule"]),
        }
    base = options or CompilerOptions()
    if (
        overrides.get("use_asm") is False
        and "enable_latency_hiding" not in overrides
        and base.enable_latency_hiding
    ):
        # Latency hiding pipelines the asm kernel; without the kernel it
        # has nothing to hide behind, so derive it off (the CLI's
        # --no-use-asm does the same).
        overrides = {**overrides, "enable_latency_hiding": False}
    return base.with_(**overrides) if overrides else base


def _service(service):
    if service is not None:
        return service
    from repro.service import get_default_service

    return get_default_service()


def compile(
    spec: Optional[GemmSpec] = None,
    *,
    arch: ArchSpec = SW26010PRO,
    shape: Optional[Tuple[int, ...]] = None,
    options: Optional[CompilerOptions] = None,
    service=None,
    timeout: Optional[float] = None,
    **option_overrides,
) -> CompiledProgram:
    """Compile one GEMM spec to an admission-verified program.

    ``shape`` — ``(M, N, K)`` or ``(M, N, K, batch)`` — is optional: the
    generated code is parametric in the problem size (§8.5), but a shape
    lets the service steer the request to a tuned configuration when its
    shape class has a :class:`~repro.tune.records.TuningRecord`.
    """
    spec = spec or GemmSpec()
    opts = _coerce_options(options, option_overrides)
    return _service(service).get_program(
        spec, arch, opts, timeout_s=timeout, shape_hint=shape
    )


def run(
    program_or_spec: Union[CompiledProgram, GemmSpec, None],
    a: np.ndarray,
    b: np.ndarray,
    *,
    c: Optional[np.ndarray] = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    guarded: bool = False,
    arch: ArchSpec = SW26010PRO,
    service=None,
    **option_overrides,
) -> GemmResult:
    """Execute a GEMM on the simulated core group.

    Accepts a compiled program, or a spec (compiled on the fly through
    the service, with the operands' shape as the tuning hint).
    ``guarded=True`` cross-checks every DMA/RMA/SPM event against the
    program's admission certificate.
    """
    if isinstance(program_or_spec, CompiledProgram):
        if option_overrides:
            raise ConfigurationError(
                "compiler options cannot be applied to an already-compiled "
                "program; pass them to api.compile() instead"
            )
        program = program_or_spec
    else:
        spec = program_or_spec or GemmSpec()
        M, K = (a.shape[-1], a.shape[-2]) if spec.trans_a else a.shape[-2:]
        N = b.shape[-2] if spec.trans_b else b.shape[-1]
        batch = a.shape[0] if spec.is_batched and a.ndim == 3 else 1
        program = compile(
            spec,
            arch=arch,
            shape=(M, N, K, batch),
            service=service,
            **option_overrides,
        )
    out, report = _run_gemm(
        program, a, b, c, alpha=alpha, beta=beta, guarded=guarded
    )
    return GemmResult(c=out, report=report)


def tune(
    spec: Optional[GemmSpec] = None,
    *,
    shape: Tuple[int, ...] = (4096, 4096, 4096),
    arch: ArchSpec = SW26010PRO,
    seed: int = 0,
    budget: int = 20,
    options: Optional[CompilerOptions] = None,
    service=None,
    full_result: bool = False,
    **option_overrides,
):
    """Search the tile/pipeline space for one shape class.

    Returns the persisted :class:`~repro.tune.records.TuningRecord`
    (or the full :class:`~repro.tune.driver.TuneResult` with
    ``full_result=True``).  Subsequent :func:`compile` calls carrying a
    ``shape`` in the same class are steered to the winner automatically.
    """
    from repro.tune import TuneOptions, Tuner

    if len(shape) == 3:
        M, N, K = shape
        batch = 1
    elif len(shape) == 4:
        M, N, K, batch = shape
    else:
        raise ConfigurationError(
            f"shape must be (M, N, K) or (M, N, K, batch), got {shape!r}"
        )
    base = _coerce_options(
        options or CompilerOptions.full(), option_overrides
    )
    tuner = Tuner(arch, service=_service(service))
    result = tuner.tune(
        spec,
        M=M,
        N=N,
        K=K,
        batch=batch,
        base_options=base,
        tune_options=TuneOptions(seed=seed, max_measurements=budget),
    )
    return result if full_result else result.record


def verify(program: CompiledProgram):
    """Run the static admission verifier; returns the per-check report."""
    from repro.verify import verify_program

    return verify_program(program)


# ---------------------------------------------------------------------------
# The serving client (``swgemm serve`` daemon)
# ---------------------------------------------------------------------------

from repro.serve.client import Client  # noqa: E402  (re-export)


def connect(
    address: Union[str, Tuple[str, int]],
    tenant: str = "default",
    timeout: Optional[float] = 30.0,
    **client_kw: object,
) -> Client:
    """Connect to a running ``swgemm serve`` daemon.

    ``address`` is a unix-socket path or a ``(host, port)`` pair.  The
    returned :class:`~repro.serve.client.Client` speaks the same verbs
    as this module (``compile``/``run``/``tune``/``verify``) plus the
    daemon-side ``ping``/``stats``/``health``/``warmup``/``shutdown``,
    with kernel descriptors as plain dicts::

        with api.connect(("127.0.0.1", 7070), tenant="ci") as client:
            client.compile({"arch": "toy", "fusion": "epilogue",
                            "epilogue_func": "sigmoid"})

    Remaining keyword arguments reach the client unchanged — notably
    the overload knobs ``deadline_ms`` (an end-to-end budget stamped on
    every request) and ``overload_retries`` /
    ``overload_retry_budget_s`` (wait out daemon overload and brownout
    rejections, sleeping the server's ``retry_after_s`` hint).
    """
    return Client(address, tenant=tenant, timeout=timeout, **client_kw)
