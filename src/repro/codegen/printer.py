"""athread C pretty-printer (§7).

Renders a compiled program as the two source files the paper's compiler
emits: the CPE (slave) file with the SPM buffers, DMA/RMA calls and the
inline assembly kernel invocation, and the MPE (host) file containing
``main``.  On the real system these compile with::

    swgcc -mslave -msimd -O3 <cpe file>
    swgcc -mhost  -msimd -O3 -faddress_align=128 <mpe file>
    swgcc -mhybrid <objects>

The printer consumes exactly the AST the simulator executes, so what is
printed is what was validated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CodegenError
from repro.poly.affine import AffExpr, FloorDiv
from repro.poly.astnodes import (
    AddrOf,
    AffRef,
    ArrayRef,
    BinExpr,
    Block,
    BlockOpStmt,
    CommentStmt,
    CommStmt,
    DoubleLit,
    Expr,
    ForLoop,
    IfStmt,
    IntLit,
    KernelCall,
    NaiveComputeStmt,
    Stmt,
    VarRef,
)
from repro.codegen.elementwise import get_elementwise

INDENT = "  "


# ---------------------------------------------------------------------------
# Affine expressions → C
# ---------------------------------------------------------------------------


def _try_mod_form(expr: AffExpr) -> Optional[str]:
    """Render ``e - d*floor(e/d)`` as ``(e) % d``."""
    if len(expr.divs) != 1:
        return None
    div, coeff = next(iter(expr.divs.items()))
    d = div.divisor
    if coeff != -d:
        return None
    base = expr + AffExpr(divs={div: d})
    if base == div.arg:
        return f"({aff_to_c(base)}) % {d}"
    return None


def aff_to_c(expr: AffExpr) -> str:
    mod_form = _try_mod_form(expr)
    if mod_form is not None:
        return mod_form
    parts: List[str] = []
    for var in sorted(expr.coeffs):
        coeff = expr.coeffs[var]
        if coeff == 1:
            parts.append(var)
        elif coeff == -1:
            parts.append(f"-{var}")
        else:
            parts.append(f"{coeff} * {var}")
    for div, coeff in sorted(expr.divs.items(), key=lambda kv: str(kv[0])):
        rendered = f"(({aff_to_c(div.arg)}) / {div.divisor})"
        if coeff == 1:
            parts.append(rendered)
        elif coeff == -1:
            parts.append(f"-{rendered}")
        else:
            parts.append(f"{coeff} * {rendered}")
    if expr.const != 0 or not parts:
        parts.append(str(expr.const))
    out = " + ".join(parts).replace("+ -", "- ")
    return out


# ---------------------------------------------------------------------------
# Expressions → C
# ---------------------------------------------------------------------------


def _is_zero(expr: Expr) -> bool:
    if isinstance(expr, IntLit):
        return expr.value == 0
    if isinstance(expr, AffRef):
        return expr.aff.is_constant() and expr.aff.constant_value() == 0
    return False


class CpePrinter:
    """Pretty-prints the CPE program."""

    def __init__(self, program) -> None:
        self.program = program
        self.buffer_slots: Dict[str, int] = {}
        for decl in program.cpe_program.buffers:
            slots = decl.shape[0] if len(decl.shape) == 3 else 1
            self.buffer_slots[decl.name] = slots

    # -- expressions -----------------------------------------------------

    def expr(self, e: Expr) -> str:
        if isinstance(e, IntLit):
            return str(e.value)
        if isinstance(e, DoubleLit):
            return repr(e.value)
        if isinstance(e, VarRef):
            return e.name
        if isinstance(e, AffRef):
            return aff_to_c(e.aff)
        if isinstance(e, BinExpr):
            if e.op in ("min", "max"):
                fn = "MIN" if e.op == "min" else "MAX"
                return f"{fn}({self.expr(e.lhs)}, {self.expr(e.rhs)})"
            return f"({self.expr(e.lhs)} {e.op} {self.expr(e.rhs)})"
        if isinstance(e, ArrayRef):
            return self.array_ref(e)
        if isinstance(e, AddrOf):
            return f"&{self.array_ref(e.ref)}"
        raise CodegenError(f"cannot print expression {type(e).__name__}")

    def array_ref(self, ref: ArrayRef) -> str:
        indices = list(ref.indices)
        text = ref.array
        if ref.memory == "spm" and self.buffer_slots.get(ref.array, 1) == 1:
            # Single-slot buffers drop the slot index.
            slot = indices.pop(0)
            if not _is_zero(slot):
                raise CodegenError(
                    f"single-slot buffer {ref.array} with non-zero slot"
                )
        for index in indices:
            text += f"[{self.expr(index)}]"
        return text

    def spm_base(self, buffer: str, slot: Expr) -> str:
        """``&local_X[slot][0][0]`` (or ``&local_X[0][0]`` single-slot)."""
        if self.buffer_slots.get(buffer, 1) == 1:
            return f"&{buffer}[0][0]"
        return f"&{buffer}[{self.expr(slot)}][0][0]"

    # -- statements ----------------------------------------------------------

    def stmt(self, s: Stmt, depth: int) -> List[str]:
        pad = INDENT * depth
        if isinstance(s, Block):
            lines: List[str] = []
            for child in s.body:
                lines.extend(self.stmt(child, depth))
            return lines
        if isinstance(s, CommentStmt):
            return [f"{pad}/* {s.text} */"]
        if isinstance(s, ForLoop):
            note = f"  /* {s.annotation} */" if s.annotation else ""
            head = (
                f"{pad}for (int {s.var} = {self.expr(s.lo)}; "
                f"{s.var} < {self.expr(s.hi)}; {s.var}++) {{{note}"
            )
            lines = [head]
            lines.extend(self.stmt(s.body, depth + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(s, IfStmt):
            lines = [f"{pad}if ({self.expr(s.cond)}) {{"]
            lines.extend(self.stmt(s.then, depth + 1))
            if s.els is not None:
                lines.append(f"{pad}}} else {{")
                lines.extend(self.stmt(s.els, depth + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(s, CommStmt):
            return [f"{pad}{line}" for line in self.comm(s)]
        if isinstance(s, KernelCall):
            c = self.spm_base(s.c_ref.array, s.c_ref.indices[0])
            a = self.spm_base(s.a_ref.array, s.a_ref.indices[0])
            b = self.spm_base(s.b_ref.array, s.b_ref.indices[0])
            return [f"{pad}{s.name}({c}, {a}, {b}, {self.expr(s.alpha)});"]
        if isinstance(s, BlockOpStmt):
            return self.block_op(s, depth)
        if isinstance(s, NaiveComputeStmt):
            return self.naive(s, depth)
        raise CodegenError(f"cannot print statement {type(s).__name__}")

    def comm(self, s: CommStmt) -> List[str]:
        args = s.args
        if s.kind == "reply_reset":
            return [f"{args['reply']}[{self.expr(args['reply_slot'])}] = 0;"]
        if s.kind in ("dma_iget", "dma_iput"):
            spm = self.spm_base(str(args["buffer"]), args["slot"])
            main = str(args["array"])
            if args.get("batch") is not None:
                main += f"[{self.expr(args['batch'])}]"
            main += f"[{self.expr(args['row'])}][{self.expr(args['col'])}]"
            reply = f"&{args['reply']}[{self.expr(args['reply_slot'])}]"
            strip = f"({args['ld_param']} - {args['len']})"
            ordered = (
                (spm, f"&{main}") if s.kind == "dma_iget" else (f"&{main}", spm)
            )
            return [
                f"{s.kind}({ordered[0]}, {ordered[1]}, {args['size']}, "
                f"{args['len']}, {strip}, {reply});"
            ]
        if s.kind in ("dma_wait_value", "rma_wait_value"):
            return [
                f"{s.kind}(&{args['reply']}[{self.expr(args['reply_slot'])}], "
                f"{args.get('value', 1)});"
            ]
        if s.kind in ("rma_row_ibcast", "rma_col_ibcast"):
            dst = self.spm_base(str(args["dst_buffer"]), args["dst_slot"])
            src = self.spm_base(str(args["src_buffer"]), args["src_slot"])
            slot = self.expr(args["reply_slot"])
            return [
                f"{s.kind}({dst}, {src}, {args['size']}, "
                f"&{args['replys']}[{slot}], &{args['replyr']}[{slot}]);"
            ]
        if s.kind == "synch":
            return ["athread_ssync_array();"]
        raise CodegenError(f"cannot print communication {s.kind!r}")

    def block_op(self, s: BlockOpStmt, depth: int) -> List[str]:
        pad = INDENT * depth
        rows, cols = s.shape
        base = self.spm_base(s.dst.array, s.dst.indices[0]).lstrip("&")
        # &local_C[0][0] style bases index as a flat [rows][cols] tile.
        tile = base.rsplit("[0][0]", 1)[0]
        lines = [
            f"{pad}for (int r = 0; r < {rows}; r++) {{",
            f"{pad}{INDENT}for (int c = 0; c < {cols}; c++) {{",
        ]
        element = f"{tile}[r][c]"
        if s.op == "scale":
            lines.append(f"{pad}{INDENT * 2}{element} *= {self.expr(s.factor)};")
        else:
            template = get_elementwise(s.func).c_template
            lines.append(
                f"{pad}{INDENT * 2}{element} = {template.format(x=element)};"
            )
        lines.append(f"{pad}{INDENT}}}")
        lines.append(f"{pad}}}")
        return lines

    def naive(self, s: NaiveComputeStmt, depth: int) -> List[str]:
        pad = INDENT * depth
        lines: List[str] = []
        for level, (var, extent) in enumerate(zip(s.loop_vars, s.extents)):
            lines.append(
                f"{pad}{INDENT * level}for (int {var} = 0; {var} < {extent}; "
                f"{var}++)"
            )
        body_pad = pad + INDENT * len(s.loop_vars)
        lines.append(
            f"{body_pad}{self.array_ref(s.target)} += {self.expr(s.value)};"
        )
        return lines

    # -- whole file -----------------------------------------------------------------

    def render(self) -> str:
        program = self.program
        spec = program.spec
        plan = program.plan
        lines: List[str] = []
        lines.append("/*")
        lines.append(" * CPE (slave) code generated by swgemm.")
        lines.append(f" * variant: {program.options.variant_name()}"
                     f", fusion: {program.options.fusion}")
        lines.append(f" * tile plan: {plan.mt}x{plan.nt}x{plan.kt} on a "
                     f"{plan.mesh}x{plan.mesh} CPE mesh "
                     f"({program.spm_bytes()} B of SPM)")
        lines.append(" * compile: swgcc -mslave -msimd -O3")
        lines.append(" */")
        lines.append('#include "athread.h"')
        lines.append('#include "swgemm_args.h"')
        lines.append("")
        if program.options.use_asm:
            from repro.codegen.backend import resolve_kernel

            kernel = resolve_kernel(
                program.arch, program.options, plan.kernel_shape
            )
            if hasattr(kernel, "source"):
                # Generated backends carry their own C body — inline it
                # so the printed file is self-contained (nothing to link
                # beyond the athread runtime).
                lines.append(kernel.source().rstrip("\n"))
            else:
                lines.append(
                    "/* The vendor-optimised inline assembly micro kernel "
                    "(compiled object, §7.2). */"
                )
                lines.append(
                    f"extern void {program.cpe_program.kernel_name}"
                    "(double *c, const double *a, const double *b, double alpha);"
                )
            lines.append("")
        for decl in program.cpe_program.buffers:
            dims = "".join(f"[{d}]" for d in decl.shape)
            lines.append(f"__thread_local {decl.dtype} {decl.name}{dims};")
        lines.append("")
        for reply in program.cpe_program.replies:
            lines.append(
                f"__thread_local volatile int {reply.name}[{max(reply.count, 1)}];"
            )
        lines.append("")
        lines.append("void swgemm_cpe(swgemm_args_t *args) {")
        lines.append(f"{INDENT}const int Rid = athread_get_row();")
        lines.append(f"{INDENT}const int Cid = athread_get_col();")
        params = list(spec.param_names())
        for p in params:
            lines.append(f"{INDENT}const int {p} = args->{p};")
        lines.append(f"{INDENT}const double alpha = args->alpha;")
        lines.append(f"{INDENT}const double beta = args->beta;")
        rank = 3 if spec.is_batched else 2
        for name in (spec.a_name, spec.b_name, spec.c_name):
            stars = "(*)" + "".join(
                f"[{d}]" for d in self._array_decl_dims(name)[1:]
            )
            lines.append(
                f"{INDENT}double {stars.replace('(*)', f'(*{name})')} = "
                f"args->{name};"
            )
        lines.append("")
        lines.extend(self.stmt(program.cpe_program.body, 1))
        lines.append("}")
        return "\n".join(lines) + "\n"

    def _array_decl_dims(self, name: str) -> List[str]:
        spec = self.program.spec
        dims = {
            spec.a_name: [spec.m_param, spec.k_param],
            spec.b_name: [spec.k_param, spec.n_param],
            spec.c_name: [spec.m_param, spec.n_param],
        }[name]
        if spec.is_batched:
            dims = [spec.batch_param] + dims
        return dims


def print_cpe_program(program) -> str:
    return CpePrinter(program).render()


def print_mpe_program(program) -> str:
    """The MPE (host) file: allocation, spawn, join, verification."""
    spec = program.spec
    plan = program.plan
    params = list(spec.param_names())
    lines: List[str] = []
    lines.append("/*")
    lines.append(" * MPE (host) code generated by swgemm.")
    lines.append(" * compile: swgcc -mhost -msimd -O3 -faddress_align=128")
    lines.append(" * link:    swgcc -mhybrid <mpe.o> <cpe.o> <asm kernel.o>")
    lines.append(" */")
    lines.append("#include <stdio.h>")
    lines.append("#include <stdlib.h>")
    lines.append('#include "athread.h"')
    lines.append('#include "swgemm_args.h"')
    lines.append("")
    lines.append("extern void slave_swgemm_cpe(swgemm_args_t *args);")
    lines.append("")
    lines.append("int main(int argc, char **argv) {")
    defaults = {spec.m_param: plan.chunk_m, spec.n_param: plan.chunk_n,
                spec.k_param: plan.k_step}
    if spec.is_batched:
        defaults[spec.batch_param] = 2
    for index, p in enumerate(params):
        lines.append(
            f"{INDENT}int {p} = argc > {index + 1} ? atoi(argv[{index + 1}]) "
            f": {defaults[p]};"
        )
    lines.append(f"{INDENT}/* Shapes must be padded to multiples of "
                 f"{plan.chunk_m}x{plan.chunk_n}x{plan.k_step} (Sec. 8.1). */")
    dims = {
        spec.a_name: (spec.m_param, spec.k_param),
        spec.b_name: (spec.k_param, spec.n_param),
        spec.c_name: (spec.m_param, spec.n_param),
    }
    batch = f"{spec.batch_param} * " if spec.is_batched else ""
    for name, (rows, cols) in dims.items():
        lines.append(
            f"{INDENT}double *{name} = (double *)memalign(128, "
            f"{batch}{rows} * {cols} * sizeof(double));"
        )
    lines.append(f"{INDENT}swgemm_args_t args;")
    for p in params:
        lines.append(f"{INDENT}args.{p} = {p};")
    lines.append(f"{INDENT}args.alpha = 1.0;")
    lines.append(f"{INDENT}args.beta = 1.0;")
    for name in dims:
        lines.append(f"{INDENT}args.{name} = {name};")
    lines.append("")
    lines.append(f"{INDENT}athread_init();")
    lines.append(f"{INDENT}unsigned long start = rtc();")
    lines.append(f"{INDENT}athread_spawn(slave_swgemm_cpe, &args);")
    lines.append(f"{INDENT}athread_join();")
    lines.append(f"{INDENT}unsigned long cycles = rtc() - start;")
    flops = " * ".join(["2.0"] + params)
    lines.append(f"{INDENT}double gflops = {flops} / cycles * CLOCK_GHZ;")
    lines.append(f'{INDENT}printf("%.2f Gflops\\n", gflops);')
    lines.append(f"{INDENT}athread_halt();")
    lines.append(f"{INDENT}return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"
