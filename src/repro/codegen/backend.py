"""Micro-kernel backends: the kernel as a generated artifact (§7.2).

The paper evaluates one hand-written vendor kernel per chip (64×64×32
inline assembly on SW26010Pro).  This layer turns that single contract
into a *family*: a :class:`KernelBackend` produces a micro kernel for a
requested shape on a requested architecture, or refuses with a reason
the tuner's pruner can record.

Two backends ship:

* :class:`VendorKernelBackend` (``"vendor"``, the default) — the
  existing §7.2 contract.  It wraps :class:`~repro.codegen.microkernel.
  AsmMicroKernel` for any shape the tile planner admits, so default
  compiles stay bit-exact with the pre-backend pipeline (same kernel
  names, same cost model, same emitted source).
* :class:`ParametricKernelBackend` (``"parametric"``) — a generator for
  register-tiled kernels at any legal (mt, nt, kt).  Legality is proved
  before generation: the shape must align to the arch's SIMD width, a
  register block (accumulators + operand vectors) must fit the arch's
  vector register file, and a minimal SPM buffer plan must leave
  non-negative slack under the PR-4 verifier's arithmetic
  (:func:`repro.verify.plan_spm_slack`).  Generated kernels carry their
  own C source (:meth:`GeneratedMicroKernel.source`) and pay a modelled
  per-register-block pipeline fill/drain cost on top of the §3.1 kernel
  time, so the vendor kernel remains the measured optimum at its own
  shape while the generator opens every other point of the space.

:func:`resolve_kernel` is the single kernel-selection entry point used
by lowering, the AST pass, the executor and the printer; it routes
``CompilerOptions.kernel_backend`` through the registry.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.codegen.microkernel import (
    AsmMicroKernel,
    NaiveKernel,
    _KernelBase,
)
from repro.sunway.arch import ArchSpec, MicroKernelShape

#: The backend used when ``CompilerOptions.kernel_backend`` is unset.
DEFAULT_BACKEND = "vendor"

#: Pipeline fill/drain cycles a generated kernel pays per register
#: block — the scheduling polish the vendor's hand-written software
#: pipelining amortises away.  Calibrated so the generated 64×64×32
#: kernel lands within ~10% of the vendor number, matching the paper's
#: premise that generated kernels are competitive but the hand kernel
#: keeps a small edge at its own shape.
GENERATED_BLOCK_OVERHEAD_CYCLES = 20.0

#: Candidate register blocks (rows × B-operand vectors), best reuse
#: first.  ``rm×rnv`` accumulators + ``rnv`` B vectors + 1 A-broadcast
#: vector + 1 scratch must fit ``arch.vector_registers``.
_REGISTER_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (8, 4), (8, 2), (4, 4), (4, 2), (4, 1), (2, 2), (2, 1), (1, 1),
)


def _block_registers(rm: int, rn_vecs: int) -> int:
    """Vector registers one register block occupies."""
    return rm * rn_vecs + rn_vecs + 1 + 1


def select_register_block(
    shape: MicroKernelShape, arch: ArchSpec
) -> Optional[Tuple[int, int]]:
    """Largest register block that tiles ``shape`` and fits the register
    file, or ``None`` when no candidate fits."""
    vecs = shape.nt // arch.simd_doubles
    for rm, rn_vecs in _REGISTER_BLOCKS:
        if shape.mt % rm or vecs % rn_vecs:
            continue
        if _block_registers(rm, rn_vecs) <= arch.vector_registers:
            return rm, rn_vecs
    return None


class GeneratedMicroKernel(_KernelBase):
    """A register-tiled kernel emitted by the parametric backend.

    Numerically identical to the vendor kernel (the register tile
    performs ``C += α·(A×B)``); in time it adds a per-register-block
    fill/drain charge to the arch's §3.1 kernel model.  Unlike the
    vendor object file, its source exists: :meth:`source` prints the
    SIMD C body the generator would hand to swgcc.
    """

    def __init__(
        self,
        arch: ArchSpec,
        shape: MicroKernelShape,
        rm: int,
        rn_vecs: int,
    ) -> None:
        super().__init__(arch, shape)
        self.rm = rm
        self.rn_vecs = rn_vecs

    @property
    def name(self) -> str:
        s = self.shape
        return f"gen_dgemm_{s.mt}x{s.nt}x{s.kt}"

    @property
    def register_blocks(self) -> int:
        s = self.shape
        return (s.mt // self.rm) * (s.nt // (self.rn_vecs * self.arch.simd_doubles))

    @property
    def seconds_per_call(self) -> float:
        s = self.shape
        base = self.arch.kernel_time_s(s.mt, s.nt, s.kt)
        overhead_cycles = GENERATED_BLOCK_OVERHEAD_CYCLES * self.register_blocks
        return base + overhead_cycles / (self.arch.cpe_freq_ghz * 1e9)

    def source(self) -> str:
        """The generated SIMD C body (register-tiled, vector intrinsics)."""
        s, vw = self.shape, self.arch.simd_doubles
        vec = f"doublev{vw}"
        rn = self.rn_vecs * vw
        lines = [
            f"/* Generated register-tiled micro kernel "
            f"({self.rm}x{rn} register block, "
            f"{_block_registers(self.rm, self.rn_vecs)} of "
            f"{self.arch.vector_registers} vector registers). */",
            f"static void {self.name}(double *c, const double *a, "
            f"const double *b, double alpha) {{",
            f"  {vec} va, vb[{self.rn_vecs}], vc[{self.rm}][{self.rn_vecs}];",
            f"  for (int i = 0; i < {s.mt}; i += {self.rm})",
            f"    for (int j = 0; j < {s.nt}; j += {rn}) {{",
            f"      /* load the C register tile */",
            f"      for (int ri = 0; ri < {self.rm}; ++ri)",
            f"        for (int rj = 0; rj < {self.rn_vecs}; ++rj)",
            f"          simd_load(vc[ri][rj], "
            f"&c[(i + ri) * {s.nt} + j + rj * {vw}]);",
            f"      for (int k = 0; k < {s.kt}; ++k) {{",
            f"        for (int rj = 0; rj < {self.rn_vecs}; ++rj)",
            f"          simd_load(vb[rj], &b[k * {s.nt} + j + rj * {vw}]);",
            f"        for (int ri = 0; ri < {self.rm}; ++ri) {{",
            f"          va = simd_set_{vec}(alpha * a[(i + ri) * {s.kt} + k]);",
            f"          for (int rj = 0; rj < {self.rn_vecs}; ++rj)",
            f"            vc[ri][rj] += va * vb[rj];  /* vmad */",
            f"        }}",
            f"      }}",
            f"      /* store the C register tile */",
            f"      for (int ri = 0; ri < {self.rm}; ++ri)",
            f"        for (int rj = 0; rj < {self.rn_vecs}; ++rj)",
            f"          simd_store(vc[ri][rj], "
            f"&c[(i + ri) * {s.nt} + j + rj * {vw}]);",
            f"    }}",
            f"}}",
        ]
        return "\n".join(lines)


class KernelBackend:
    """Protocol for micro-kernel generators.

    ``supports`` returns a human-readable refusal reason (or ``None``
    for acceptance); ``generate`` builds the kernel object.  Callers
    must check ``supports`` first — ``generate`` raises
    :class:`~repro.errors.ConfigurationError` on a refused shape.
    """

    name: str = "abstract"

    def supports(self, shape: MicroKernelShape, arch: ArchSpec) -> Optional[str]:
        raise NotImplementedError

    def generate(
        self, shape: MicroKernelShape, vector_width: int, arch: ArchSpec
    ) -> _KernelBase:
        raise NotImplementedError

    def _admit(self, shape: MicroKernelShape, arch: ArchSpec) -> None:
        reason = self.supports(shape, arch)
        if reason is not None:
            raise ConfigurationError(
                f"kernel backend {self.name!r} cannot generate {shape} on "
                f"{arch.name}: {reason}"
            )


class VendorKernelBackend(KernelBackend):
    """The existing §7.2 vendor contract, unchanged.

    Accepts any positive shape — the vendor kernel family is modelled
    (not assembled), and the tile planner / verifier already gate SPM
    feasibility — so default compiles and existing tuning records keep
    their exact pre-backend behaviour.
    """

    name = "vendor"

    def supports(self, shape: MicroKernelShape, arch: ArchSpec) -> Optional[str]:
        if min(shape.mt, shape.nt, shape.kt) <= 0:
            return "kernel dimensions must be positive"
        return None

    def generate(
        self, shape: MicroKernelShape, vector_width: int, arch: ArchSpec
    ) -> _KernelBase:
        self._admit(shape, arch)
        return AsmMicroKernel(arch, shape)


class ParametricKernelBackend(KernelBackend):
    """Register-tiled kernel generator for any legal (mt, nt, kt)."""

    name = "parametric"

    def supports(self, shape: MicroKernelShape, arch: ArchSpec) -> Optional[str]:
        if min(shape.mt, shape.nt, shape.kt) <= 0:
            return "kernel dimensions must be positive"
        if shape.nt % arch.simd_doubles:
            return (
                f"nt={shape.nt} is not a multiple of the {arch.simd_doubles}-"
                f"double SIMD width"
            )
        if shape.kt < 2:
            return "reduction depth kt < 2 cannot amortise the C tile traffic"
        if select_register_block(shape, arch) is None:
            return (
                f"no register block fits the {arch.vector_registers}-entry "
                f"vector register file"
            )
        # SPM floor via the verifier's slack arithmetic: if even the
        # minimal single-buffered DMA-only plan overflows, no pipeline
        # variant of this shape can be scheduled on this arch.
        from repro.core.tile_model import TilePlan, _build_buffers
        from repro.verify import plan_spm_slack

        minimal = TilePlan(
            mt=shape.mt,
            nt=shape.nt,
            kt=shape.kt,
            mesh=arch.mesh_rows,
            buffers=_build_buffers(shape.mt, shape.nt, shape.kt, False, False),
            use_rma=False,
            double_buffered=False,
        )
        slack = plan_spm_slack(arch, minimal)
        if slack < 0:
            return (
                f"minimal SPM plan overflows by {-slack} B on {arch.name} "
                f"({minimal.spm_bytes()} B of buffers)"
            )
        return None

    def generate(
        self, shape: MicroKernelShape, vector_width: int, arch: ArchSpec
    ) -> _KernelBase:
        self._admit(shape, arch)
        rm, rn_vecs = select_register_block(shape, arch)
        return GeneratedMicroKernel(arch, shape, rm, rn_vecs)


# ---------------------------------------------------------------------------
# Backend registry + kernel resolution
# ---------------------------------------------------------------------------

_BACKENDS: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register a backend under ``backend.name`` (last wins)."""
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Look up a registered backend (``None`` → the vendor default)."""
    key = name or DEFAULT_BACKEND
    try:
        return _BACKENDS[key]
    except KeyError:
        known = ", ".join(backend_names())
        raise ConfigurationError(
            f"unknown kernel backend {key!r} (registered: {known})"
        ) from None


def backend_names() -> Tuple[str, ...]:
    return tuple(_BACKENDS)


register_backend(VendorKernelBackend())
register_backend(ParametricKernelBackend())


def resolve_kernel(arch, options, shape=None):
    """The kernel a compilation with ``options`` runs on ``arch``.

    ``shape`` defaults to the tile config when one is set, else the
    arch's contract — the same precedence the tile planner applies.
    The scalar (``use_asm=False``) path bypasses the backends entirely:
    it models swgcc compiling the naive loop nest, which no generator
    is involved in.
    """
    if shape is None:
        cfg = options.tile_config
        shape = cfg.shape() if cfg is not None else arch.micro_kernel
    if not options.use_asm:
        return NaiveKernel(arch, shape)
    backend = get_backend(getattr(options, "kernel_backend", None))
    return backend.generate(shape, arch.simd_doubles, arch)
