"""The inline assembly micro kernel (§7.2) and its naive counterpart.

On the real system the kernel is a compiled object written by the Sunway
architects: it moves the SPM tiles through the register file with optimal
register allocation, SIMD intrinsics, unrolling and instruction
scheduling, and its shape — the arch's contract, 64×64×32 on SW26010Pro —
was chosen to maximise SPM utilisation under double buffering.  Neither
the object file nor the ISA is available, so the simulator substitutes:

* :class:`AsmMicroKernel` — numerically a fused
  ``C += α · (A_τ × B_τ)`` over the SPM tiles (NumPy ``matmul``); in time,
  ``flops / (per-CPE peak × kernel efficiency)``.  The call contract —
  fixed shape, SPM operands, accumulate into C — matches the paper's.
* :class:`NaiveKernel` — the ``--no-use-asm`` path: the same mathematics
  at the scalar loop-nest rate swgcc would achieve without the assembly
  kernel (the paper's red baseline bars, ~3.7% of peak).

Both kernels *verify their operand shapes* against the contract: the
compiler may only call the kernel with exactly the tiles it was built
for, which is the property §3's decomposition must establish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ExecutionError
from repro.sunway.arch import ArchSpec, MicroKernelShape


@dataclass(frozen=True)
class KernelProfile:
    """Cost/identity data the simulator and printer need."""

    name: str
    shape: MicroKernelShape
    seconds_per_call: float


class _KernelBase:
    def __init__(self, arch: ArchSpec, shape: Optional[MicroKernelShape] = None) -> None:
        self.arch = arch
        self.shape = shape or arch.micro_kernel

    def _check(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
        s = self.shape
        if c.shape != (s.mt, s.nt) or a.shape != (s.mt, s.kt) or b.shape != (s.kt, s.nt):
            raise ExecutionError(
                f"{self.name} called with tiles C{c.shape} A{a.shape} "
                f"B{b.shape}; contract is C({s.mt},{s.nt}) A({s.mt},{s.kt}) "
                f"B({s.kt},{s.nt})"
            )

    def execute(self, c: np.ndarray, a: np.ndarray, b: np.ndarray, alpha: float) -> None:
        self._check(c, a, b)
        # The accumulation the register tile performs: C += α·(A×B).
        c += alpha * (a @ b)

    def profile(self) -> KernelProfile:
        return KernelProfile(self.name, self.shape, self.seconds_per_call)


class AsmMicroKernel(_KernelBase):
    """The vendor-optimised kernel behind a mark node."""

    precision: str = "d"  # "d" = double, "s" = single

    @property
    def name(self) -> str:
        s = self.shape
        return f"asm_{self.precision}gemm_{s.mt}x{s.nt}x{s.kt}"

    @property
    def seconds_per_call(self) -> float:
        s = self.shape
        return self.arch.kernel_time_s(s.mt, s.nt, s.kt)


class NaiveKernel(_KernelBase):
    """Plain scalar loop code (``--no-use-asm``)."""

    @property
    def name(self) -> str:
        s = self.shape
        return f"naive_dgemm_{s.mt}x{s.nt}x{s.kt}"

    @property
    def seconds_per_call(self) -> float:
        s = self.shape
        return self.arch.naive_time_s(s.mt, s.nt, s.kt)


def get_kernel(
    arch: ArchSpec, use_asm: bool, shape: Optional[MicroKernelShape] = None
) -> _KernelBase:
    """Kernel selection for the compiled program.

    ``shape`` overrides the arch's default micro-kernel contract — the
    autotuner path, where the tile plan (not the arch constant) is the
    single source of truth for the kernel shape.
    """
    cls = AsmMicroKernel if use_asm else NaiveKernel
    return cls(arch, shape)
