"""Element-wise functions for the DL fusion patterns (§7.3).

The paper evaluates two patterns: a *quantisation* prologue over the input
matrix A and an *activation* epilogue over C.  The registry below provides
each function in three forms:

* a NumPy implementation (used by the simulator and reference results);
* a scalar C expression template (used by the athread printer);
* a cost in elements/second class (all are simple enough to run at the
  CPE's vectorised element-wise rate, or the MPE's scalar rate for the
  library baselines).

All functions are deterministic so fused and unfused executions can be
compared bit-for-bit in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ElementwiseFunc:
    """One element-wise function with per-processor cost rates.

    ``cpe_rate``/``mpe_rate`` are elements/second on a CPE (vectorised,
    SPM-resident tile) and on the MPE (scalar, through the cache
    hierarchy and DDR).  The asymmetries are calibrated against §8.4:
    quantisation's round-to-nearest has no CPE SIMD form (making the
    fused prologue's recomputation visible, −9% as in Fig. 16 upper),
    while the activation's ``exp`` is what makes the MPE-side epilogue
    baseline collapse to ~40% of peak (Fig. 16 lower)."""

    name: str
    numpy_fn: Callable[[np.ndarray], np.ndarray]
    c_template: str  # e.g. "fmax({x}, 0.0)"
    cpe_rate: float = 2.0e9
    mpe_rate: float = 3.0e8


def _quant(x: np.ndarray) -> np.ndarray:
    """A simple symmetric fixed-point quantisation (1/16 steps): the kind
    of element-wise prologue DL inference applies to weight matrices."""
    return np.round(x * 16.0) / 16.0


_REGISTRY: Dict[str, ElementwiseFunc] = {
    "quant": ElementwiseFunc(
        "quant", _quant, "round({x} * 16.0) / 16.0",
        cpe_rate=3.3e8, mpe_rate=4.5e8,
    ),
    "relu": ElementwiseFunc(
        "relu", lambda x: np.maximum(x, 0.0), "fmax({x}, 0.0)",
        cpe_rate=2.0e9, mpe_rate=3.0e8,
    ),
    "sigmoid": ElementwiseFunc(
        "sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)), "1.0 / (1.0 + exp(-({x})))",
        cpe_rate=6.0e8, mpe_rate=1.15e8,
    ),
    "tanh": ElementwiseFunc(
        "tanh", np.tanh, "tanh({x})", cpe_rate=6.0e8, mpe_rate=1.2e8
    ),
    "identity": ElementwiseFunc(
        "identity", lambda x: x, "{x}", cpe_rate=4.0e9, mpe_rate=1.0e9
    ),
}


def get_elementwise(name: str) -> ElementwiseFunc:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown element-wise function {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def available_functions() -> Dict[str, ElementwiseFunc]:
    return dict(_REGISTRY)
