"""Code generation backends.

Two consumers share the AST produced by :mod:`repro.poly.astgen`:

* :mod:`repro.codegen.printer` pretty-prints athread C source — the MPE
  file containing ``main`` and the CPE file with the SPM buffers, DMA/RMA
  calls and the micro-kernel invocation (§7);
* the interpreter in :mod:`repro.runtime.executor` runs the same AST on
  the simulated cluster.

:mod:`repro.codegen.backend` is the kernel-generation layer: a registry
of :class:`~repro.codegen.backend.KernelBackend` implementations (the
vendor §7.2 contract and the parametric register-tiled generator) with
:func:`~repro.codegen.backend.resolve_kernel` as the single selection
entry point.  :mod:`repro.codegen.microkernel` hosts the kernel model
classes the backends build on, and :mod:`repro.codegen.elementwise` the
quantisation/activation functions used by the DL fusion patterns (§7.3).
"""

from repro.codegen.backend import (
    GeneratedMicroKernel,
    KernelBackend,
    ParametricKernelBackend,
    VendorKernelBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_kernel,
)
from repro.codegen.microkernel import AsmMicroKernel, NaiveKernel, get_kernel

__all__ = [
    "AsmMicroKernel",
    "NaiveKernel",
    "get_kernel",
    "GeneratedMicroKernel",
    "KernelBackend",
    "ParametricKernelBackend",
    "VendorKernelBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_kernel",
]
