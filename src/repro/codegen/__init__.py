"""Code generation backends.

Two consumers share the AST produced by :mod:`repro.poly.astgen`:

* :mod:`repro.codegen.printer` pretty-prints athread C source — the MPE
  file containing ``main`` and the CPE file with the SPM buffers, DMA/RMA
  calls and the inline assembly kernel invocation (§7);
* the interpreter in :mod:`repro.runtime.executor` runs the same AST on
  the simulated cluster.

:mod:`repro.codegen.microkernel` models the vendor's inline assembly
micro kernel (§7.2) behind its fixed call contract, and
:mod:`repro.codegen.elementwise` hosts the quantisation/activation
functions used by the DL fusion patterns (§7.3).
"""

from repro.codegen.microkernel import AsmMicroKernel, NaiveKernel, get_kernel

__all__ = ["AsmMicroKernel", "NaiveKernel", "get_kernel"]
