"""Tuning records: persisted winners of the search.

A :class:`TuningRecord` binds a *class* of problems — not one exact
shape — to the configuration that won the search for it:

* the **spec class** strips naming from the :class:`GemmSpec` (parameter
  and array names cannot change the generated code) and keeps what does:
  batchedness, transposes, dtype, fusion functions;
* the **shape class** buckets each dimension to its nearest power of two
  (integer arithmetic: round up when ``d ≥ 1.5·2^p``), so 1000×4096×512
  and 1100×4000×500 share one record — matching the granularity at
  which the padding-waste tradeoff actually changes;
* the **search-space version** (:data:`repro.tune.space.SEARCH_SPACE_VERSION`)
  invalidates records when the candidate grid changes shape.

Records live in a :class:`TuningRecordStore` next to the compiled-kernel
artifacts (``<cache-dir>/tuning/``), written atomically like the
artifact store, with an in-memory fallback for cache-less services.  The
store also keeps per-record *journals* — partial measurement maps the
search driver appends to after every simulation — so an interrupted
``swgemm tune`` resumes instead of re-measuring.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.runtime import serde
from repro.sunway.arch import ArchSpec
from repro.tune.space import SEARCH_SPACE_VERSION, Candidate

_SUFFIX = ".json"
_JOURNAL_SUFFIX = ".journal.json"


def shape_bucket(d: int) -> int:
    """Nearest power of two, integer math (up from ``1.5·2^p``)."""
    if d <= 1:
        return 1
    p = d.bit_length() - 1  # 2^p <= d < 2^(p+1)
    return 1 << (p + 1) if 2 * d >= 3 * (1 << p) else 1 << p


def shape_class(
    M: int, N: int, K: int, batch: int = 1
) -> Tuple[int, int, int, int]:
    return (shape_bucket(M), shape_bucket(N), shape_bucket(K), shape_bucket(batch))


def spec_class(spec: GemmSpec) -> Dict[str, object]:
    """Spec identity minus naming — what can change the generated code."""
    return {
        "batched": spec.is_batched,
        "trans_a": spec.trans_a,
        "trans_b": spec.trans_b,
        "dtype": spec.dtype,
        "prologue": spec.prologue_func,
        "epilogue": spec.epilogue_func,
    }


def record_key(
    spec: GemmSpec, arch: ArchSpec, shape_cls: Tuple[int, int, int, int]
) -> str:
    """Content address of one tuning record."""
    from repro.service.keys import canonical_blob

    payload = {
        "space": SEARCH_SPACE_VERSION,
        "spec_class": spec_class(spec),
        "arch": canonical_blob(arch),
        "shape_class": list(shape_cls),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TuningRecord:
    """The winner of one search, addressed by ``key``."""

    key: str
    shape_class: Tuple[int, int, int, int]
    arch_name: str
    space_version: int
    candidate: Candidate
    best_gflops: float
    default_gflops: float
    measurements: int
    seed: int

    @property
    def improvement(self) -> float:
        """Fractional win over the default config (0.08 = 8% faster)."""
        if self.default_gflops <= 0:
            return 0.0
        return self.best_gflops / self.default_gflops - 1.0

    def apply(self, options: CompilerOptions) -> CompilerOptions:
        """Steer a request's options to the recorded configuration."""
        return self.candidate.apply(options)

    def describe(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "shape_class": "x".join(str(d) for d in self.shape_class[:3])
            + (f" b{self.shape_class[3]}" if self.shape_class[3] > 1 else ""),
            "config": self.candidate.name(),
            "best_gflops": round(self.best_gflops, 2),
            "default_gflops": round(self.default_gflops, 2),
            "improvement_pct": round(100 * self.improvement, 2),
            "measurements": self.measurements,
            "seed": self.seed,
            "space_version": self.space_version,
            "arch": self.arch_name,
        }


class TuningRecordStore:
    """Directory of tuning records (+ journals), or in-memory fallback.

    Mirrors the artifact store's discipline: one JSON file per key,
    atomic temp-file/rename writes, corrupt files treated as misses.
    ``root=None`` keeps everything in process memory (the memory-only
    default service still tunes; the records just die with it).
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except OSError:
                # Read-only cache dir: serve existing records if the
                # directory is already there, else degrade to memory-only
                # (inspection commands must work against legacy stores).
                if not self.root.is_dir():
                    self.root = None
        self._memory: Dict[str, TuningRecord] = {}
        self._journals: Dict[str, Dict[str, float]] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- records -----------------------------------------------------------

    def path_for(self, key: str) -> Optional[Path]:
        return None if self.root is None else self.root / f"{key}{_SUFFIX}"

    def get(self, key: str) -> Optional[TuningRecord]:
        record = self._memory.get(key)
        if record is None and self.root is not None:
            try:
                data = json.loads(self.path_for(key).read_text())
                record = serde.decode(data["record"])
                self._memory[key] = record
            except (FileNotFoundError, json.JSONDecodeError, KeyError,
                    serde.SerializationError):
                record = None
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, record: TuningRecord) -> None:
        self._memory[record.key] = record
        self.writes += 1
        if self.root is None:
            return
        payload = {"key": record.key, "record": serde.encode(record)}
        self._atomic_write(
            self.path_for(record.key), json.dumps(payload, sort_keys=True)
        )

    def keys(self) -> List[str]:
        keys = set(self._memory)
        if self.root is not None:
            keys.update(
                p.name[: -len(_SUFFIX)]
                for p in self.root.glob(f"*{_SUFFIX}")
                if not p.name.endswith(_JOURNAL_SUFFIX)
            )
        return sorted(keys)

    def records(self) -> List[TuningRecord]:
        return [r for r in (self.get(k) for k in self.keys()) if r is not None]

    def clear(self) -> int:
        removed = len(self.keys())
        self._memory.clear()
        self._journals.clear()
        if self.root is not None:
            for p in self.root.glob("*.json"):
                p.unlink(missing_ok=True)
        return removed

    # -- journals (search resumability) ------------------------------------

    def journal_load(self, key: str) -> Dict[str, float]:
        """Candidate-name → measured Gflops map of an earlier (possibly
        interrupted) search for this key."""
        if self.root is None:
            return dict(self._journals.get(key, {}))
        try:
            data = json.loads(
                (self.root / f"{key}{_JOURNAL_SUFFIX}").read_text()
            )
            return {str(k): float(v) for k, v in data.items()}
        except (FileNotFoundError, json.JSONDecodeError, ValueError):
            return {}

    def journal_save(self, key: str, measurements: Dict[str, float]) -> None:
        self._journals[key] = dict(measurements)
        if self.root is None:
            return
        self._atomic_write(
            self.root / f"{key}{_JOURNAL_SUFFIX}",
            json.dumps(measurements, sort_keys=True),
        )

    def journal_clear(self, key: str) -> None:
        self._journals.pop(key, None)
        if self.root is not None:
            (self.root / f"{key}{_JOURNAL_SUFFIX}").unlink(missing_ok=True)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "dir": str(self.root) if self.root is not None else None,
            "records": len(self.keys()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    # -- helpers -----------------------------------------------------------

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# Candidate and TuningRecord round-trip through the tagged serde format
# like every other compiler dataclass (TileConfig registers with the
# core dataclasses in repro.runtime.serde).
serde.register_dataclass(Candidate)
serde.register_dataclass(TuningRecord)
