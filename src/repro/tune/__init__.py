"""Model-guided autotuning of the tile/pipeline configuration space.

The paper fixes its kernel at the analytically-optimal 64×64×32 point
(§3.1); this subsystem searches around that point for the shapes where
the single point is *not* optimal — ragged and batched problems whose
zero-padding waste (§8.1) dominates — in two stages:

1. :mod:`repro.tune.space` + :mod:`repro.tune.pruner` — enumerate the
   candidate grid and reject infeasible/obviously-bad points with the
   analytical cost model and the verifier's SPM-budget arithmetic,
   without compiling anything;
2. :mod:`repro.tune.driver` — compile survivors through the
   :class:`~repro.service.CompileService` (admission verifier included)
   and measure them on the cycle-accurate simulator, under a seeded,
   journal-resumable search (exhaustive for small spaces, greedy
   hill-climb with random restarts for large ones).

Winners persist as :class:`~repro.tune.records.TuningRecord`s in the
service's record store, content-addressed by (spec class, arch, search
space version, shape class), and later compiles of the same shape class
are steered straight to the recorded best configuration.
"""

from repro.tune.driver import TuneOptions, TuneResult, Tuner, Trial, tune_spec
from repro.tune.pruner import PrunedCandidate, analyze, predict_gflops, prune
from repro.tune.records import (
    TuningRecord,
    TuningRecordStore,
    record_key,
    shape_bucket,
    shape_class,
    spec_class,
)
from repro.tune.space import (
    SEARCH_SPACE_VERSION,
    Candidate,
    SplitMix64,
    default_candidate,
    enumerate_candidates,
)

__all__ = [
    "SEARCH_SPACE_VERSION",
    "Candidate",
    "SplitMix64",
    "PrunedCandidate",
    "TuneOptions",
    "TuneResult",
    "Tuner",
    "Trial",
    "TuningRecord",
    "TuningRecordStore",
    "analyze",
    "default_candidate",
    "enumerate_candidates",
    "predict_gflops",
    "prune",
    "record_key",
    "shape_bucket",
    "shape_class",
    "spec_class",
    "tune_spec",
]
