"""The autotuner's search space and its deterministic randomness.

The paper picks one point — the 64×64×32 micro kernel with RMA
broadcasts and two-level latency hiding — analytically (§3.1, §6.3).
The tuner instead searches the surrounding configuration space:

* (X̂, Ŷ, Ẑ) tile sizes — a power-of-two-ish grid around the arch's
  analytical default (quarter to double per dimension, SIMD-aligned);
* the k-strip factor and SPM buffer depth — pinned on each candidate's
  :class:`~repro.core.options.TileConfig` so search points are
  self-describing (option reconciliation collapses redundant pins);
* RMA broadcasts on/off and latency hiding on/off;
* the schedule policy — the fixed §6 recipe vs. the replay-proven
  schedule rewrite stack (``--schedule=optimize``), searched only where
  it can run (hiding candidates on the asm path);
* the kernel backend — the vendor contract kernel vs. the parametric
  register-tiled generator (:mod:`repro.codegen.backend`), searched
  jointly with the shape since a generated kernel admits shapes the
  vendor object was never built for.  Shapes a backend refuses surface
  as :class:`~repro.errors.ConfigurationError` in the analytical model,
  which the pruner already maps to "infeasible".

Randomness is a :class:`SplitMix64` generator seeded from the tuning
options — never the ``random`` module or any wall-clock source — so a
search is a pure function of ``(spec, arch, space, seed)`` and its
result can be cached and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.options import CompilerOptions, SchedulePolicy, TileConfig
from repro.sunway.arch import ArchSpec

#: Bump when the candidate grid or the candidate encoding changes shape —
#: tuning records are content-addressed by (spec-class, arch, space
#: version), so old records stop matching instead of silently steering
#: compiles to points the new space no longer contains.  3: the
#: ``schedule`` axis joined (recipe vs. the optimize rewrite stack).
SEARCH_SPACE_VERSION = 3


@dataclass(frozen=True)
class Candidate:
    """One point of the search space."""

    tile: TileConfig
    enable_rma: bool = True
    enable_latency_hiding: bool = True
    #: Which generator produces the micro kernel for ``tile``'s shape.
    #: ``"vendor"`` (the default, and the only pre-v2 value) keeps
    #: candidate names byte-identical with the v1 space.
    kernel_backend: str = "vendor"
    #: ``None`` keeps the fixed §6 recipe (the pre-v3 behaviour, and the
    #: only legal value for non-hiding candidates); ``"optimize"`` runs
    #: the replay-proven schedule rewrite stack on top of the recipe.
    schedule: Optional[str] = None

    def name(self) -> str:
        flags = ("rma" if self.enable_rma else "dma") + (
            "+hide" if self.enable_latency_hiding else ""
        )
        label = f"{self.tile.name()}:{flags}"
        if self.kernel_backend != "vendor":
            label += f":{self.kernel_backend}"
        if self.schedule == "optimize":
            label += ":sched"
        return label

    def knobs(self) -> Tuple[int, int, int, bool, bool, str, Optional[str]]:
        """The axes hill-climbing steps along (one knob per move)."""
        return (
            self.tile.mt,
            self.tile.nt,
            self.tile.kt,
            self.enable_rma,
            self.enable_latency_hiding,
            self.kernel_backend,
            self.schedule,
        )

    def apply(self, options: CompilerOptions) -> CompilerOptions:
        """The caller's options steered to this point.

        Latency hiding only exists around the fast kernel
        (``use_asm``), so a no-asm base keeps hiding off regardless.
        ``"vendor"`` maps to ``kernel_backend=None`` — the reconciled
        default — so vendor candidates address the same cache keys as
        pre-v2 tuning runs.
        """
        hiding = self.enable_latency_hiding and options.use_asm
        return options.with_(
            tile_config=self.tile,
            enable_rma=self.enable_rma,
            enable_latency_hiding=hiding,
            kernel_backend=None
            if self.kernel_backend == "vendor"
            else self.kernel_backend,
            # The rewrite stack only exists on top of the hiding recipe;
            # reconciliation would drop a policy on a non-hiding compile
            # anyway, so map it to the canonical None up front.
            schedule=SchedulePolicy(mode="optimize")
            if self.schedule == "optimize" and hiding
            else None,
        )


def _tile_sizes(default: int, floor: int = 4) -> List[int]:
    """Quarter/half/default/double grid, SIMD-aligned, de-duplicated."""
    raw = (default // 4, default // 2, default, default * 2)
    sizes = sorted({max(floor, (v // 4) * 4) for v in raw if v >= floor})
    return sizes or [default]


def enumerate_candidates(
    arch: ArchSpec, base_options: CompilerOptions
) -> List[Candidate]:
    """The full (unpruned) candidate list for one arch + base options.

    Deterministically ordered — the order is part of the search's
    reproducibility contract (restart indices address into it).
    """
    mk = arch.micro_kernel
    rma_choices: Sequence[bool] = (
        (True, False) if arch.rma_supported and base_options.enable_rma
        else (False,)
    )
    hiding_choices: Sequence[bool] = (
        (True, False)
        if base_options.use_asm and base_options.enable_latency_hiding
        else (False,)
    )
    # Backends only differentiate the asm path (no-asm compiles run the
    # naive kernel regardless); shapes the parametric generator refuses
    # are pruned as infeasible by the analytical model, not here.
    backend_choices: Sequence[str] = (
        ("vendor", "parametric") if base_options.use_asm else ("vendor",)
    )
    candidates: List[Candidate] = []
    for mt in _tile_sizes(mk.mt):
        for nt in _tile_sizes(mk.nt):
            for kt in _tile_sizes(mk.kt):
                for rma in rma_choices:
                    for hiding in hiding_choices:
                        for backend in backend_choices:
                            schedules: Sequence[Optional[str]] = (
                                (None, "optimize") if hiding else (None,)
                            )
                            for schedule in schedules:
                                tile = TileConfig(
                                    mt=mt,
                                    nt=nt,
                                    kt=kt,
                                    buffer_depth=2 if hiding else 1,
                                    k_strip=arch.mesh_rows if rma else 1,
                                )
                                candidates.append(
                                    Candidate(
                                        tile, rma, hiding, backend, schedule
                                    )
                                )
    return candidates


def default_candidate(arch: ArchSpec, base_options: CompilerOptions) -> Candidate:
    """The paper's point: the arch's analytical tile with the base
    pipeline — the baseline every tuned config must beat."""
    use_rma = base_options.enable_rma and arch.rma_supported
    hiding = base_options.enable_latency_hiding and base_options.use_asm
    mk = arch.micro_kernel
    return Candidate(
        TileConfig(
            mt=mk.mt,
            nt=mk.nt,
            kt=mk.kt,
            buffer_depth=2 if hiding else 1,
            k_strip=arch.mesh_rows if use_rma else 1,
        ),
        enable_rma=use_rma,
        enable_latency_hiding=hiding,
    )


class SplitMix64:
    """Deterministic 64-bit PRNG (splitmix64), seeded from the tuning
    options — the repo-wide rule that search results must be replayable
    forbids the ``random`` module and wall-clock entropy."""

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = seed & self._MASK

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        if n <= 0:
            raise ValueError("randrange needs a positive bound")
        return self.next_u64() % n

    def choice(self, seq: Sequence):
        return seq[self.randrange(len(seq))]


def neighbors(candidate: Candidate, pool: Sequence[Candidate]) -> Iterator[Candidate]:
    """Pool members one knob-move away from ``candidate`` (the
    hill-climb's step set)."""
    own = candidate.knobs()
    for other in pool:
        if other is candidate:
            continue
        if sum(1 for a, b in zip(own, other.knobs()) if a != b) == 1:
            yield other
