"""Stage 1 of the search: the analytical pruner.

Rejects infeasible or obviously-bad candidates *without compiling
anything*, using exactly the arithmetic the rest of the stack enforces:

* feasibility — the candidate's SPM buffer plan is built by
  :func:`repro.core.tile_model.plan_for_kernel` and budget-checked with
  :func:`repro.verify.plan_spm_slack`, the plan-level core of the
  admission verifier's §6.3 check, so no point the verifier would later
  reject survives pruning;
* ranking — the per-iteration cost model of §3.1
  (:func:`~repro.core.tile_model.kernel_efficiency_model`, the arch's
  DMA/RMA cost model), extended with the padding waste a concrete
  problem shape pays: ragged shapes are exactly where a smaller chunk
  beats the paper's 512×512×256 default, and the pruner must see that.

The predicted number is a *ranking* signal, not a measurement — stage 2
(:mod:`repro.tune.driver`) measures survivors on the cycle-accurate
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SPMOverflowError
from repro.core.options import CompilerOptions
from repro.core.passes import reconcile_options
from repro.core.spec import GemmSpec
from repro.core.tile_model import (
    TilePlan,
    dma_burst_efficiency,
    kernel_efficiency_model,
)
from repro.core.tile_model import plan_for_kernel
from repro.sunway.arch import ArchSpec
from repro.tune.space import Candidate
from repro.verify import plan_spm_slack

_DT = 8

#: Per-inner-iteration fixed overhead (loop control, reply bookkeeping),
#: matching the constant the §3.1 shape search uses.
PER_ITER_OVERHEAD_US = 1.2


@dataclass(frozen=True)
class PrunedCandidate:
    """One candidate's stage-1 verdict."""

    candidate: Candidate
    feasible: bool
    reason: str
    predicted_gflops: float
    limiter: str
    spm_slack_bytes: int


def predict_gflops(
    arch: ArchSpec,
    plan: TilePlan,
    shape: Optional[Tuple[int, int, int]] = None,
    itemsize: int = _DT,
) -> Tuple[float, str]:
    """Modelled mesh-wide throughput of one plan, with padding waste.

    Mirrors :func:`repro.core.tile_model.score_shape` but honours the
    candidate's actual RMA / double-buffering mode, and — when the
    concrete ``(M, N, K)`` is known — scales by the useful-flops
    fraction of the zero-padded problem the mesh really executes.
    """
    mt, nt, kt, mesh = plan.mt, plan.nt, plan.kt, plan.mesh
    flops = 2.0 * mt * nt * kt
    eff = kernel_efficiency_model(kt)
    t_kernel = flops / (arch.cpe_peak_gflops * 1e9 * eff)
    t_kernel += PER_ITER_OVERHEAD_US * 1e-6
    a_bytes = mt * kt * itemsize
    b_bytes = kt * nt * itemsize
    if plan.use_rma:
        # Row/column broadcasts travel on independent channels (§6.1);
        # each DMA'd tile is reused mesh-wide, so the shared channel
        # carries 1/mesh of the naive traffic.
        t_rma = max(arch.rma_time_s(a_bytes), arch.rma_time_s(b_bytes))
        dma_bytes = (
            a_bytes / dma_burst_efficiency(kt * itemsize)
            + b_bytes / dma_burst_efficiency(nt * itemsize)
        ) / mesh
    else:
        t_rma = 0.0
        dma_bytes = a_bytes / dma_burst_efficiency(
            kt * itemsize
        ) + b_bytes / dma_burst_efficiency(nt * itemsize)
    t_dma = arch.num_cpes * dma_bytes / (arch.dma_bandwidth_gbs * 1e9)
    if plan.double_buffered:
        per_iter = max(t_kernel, t_rma, t_dma)
        limiter = {t_kernel: "kernel", t_rma: "rma", t_dma: "dma"}[per_iter]
    else:
        # No hiding: transfers and compute serialise (Fig. 9).
        per_iter = t_kernel + t_rma + t_dma
        limiter = "serial"
    gflops = arch.num_cpes * flops / per_iter / 1e9
    if shape is not None:
        M, N, K = shape

        def up(value: int, multiple: int) -> int:
            return -(-value // multiple) * multiple

        padded = (
            up(M, plan.chunk_m) * up(N, plan.chunk_n) * up(K, plan.k_step)
        )
        gflops *= (M * N * K) / padded
    return gflops, limiter


def analyze(
    spec: GemmSpec,
    arch: ArchSpec,
    base_options: CompilerOptions,
    candidate: Candidate,
    shape: Optional[Tuple[int, int, int]] = None,
) -> PrunedCandidate:
    """Stage-1 verdict for one candidate (never compiles)."""
    try:
        options = reconcile_options(spec, candidate.apply(base_options), arch)
        plan = plan_for_kernel(
            arch,
            options,
            trans_a=spec.trans_a,
            trans_b=spec.trans_b,
            itemsize=spec.itemsize,
        )
    except (ConfigurationError, SPMOverflowError) as exc:
        return PrunedCandidate(
            candidate, False, str(exc), 0.0, "infeasible", -1
        )
    slack = plan_spm_slack(arch, plan)
    if slack < 0:  # plan_for_kernel already raises; belt and braces
        return PrunedCandidate(
            candidate, False, f"SPM overflow by {-slack} B", 0.0, "spm", slack
        )
    gflops, limiter = predict_gflops(arch, plan, shape, spec.itemsize)
    return PrunedCandidate(candidate, True, "", gflops, limiter, slack)


def prune(
    spec: GemmSpec,
    arch: ArchSpec,
    base_options: CompilerOptions,
    candidates: Sequence[Candidate],
    shape: Optional[Tuple[int, int, int]] = None,
    keep_fraction: float = 0.5,
    keep_min: int = 8,
) -> Tuple[List[PrunedCandidate], List[PrunedCandidate]]:
    """Split candidates into (survivors, rejected).

    Survivors are the feasible points ranked by predicted throughput,
    truncated to ``max(keep_min, keep_fraction · feasible)`` — the
    obviously-bad tail never reaches the simulator.  Ties break on the
    candidate's position in the deterministic enumeration order.

    The arch's analytical default (the paper's provably-feasible point)
    is never pruned: even when the model ranks it into the tail — e.g.
    on tiny shapes where its padding waste dominates — it survives, so
    the measured baseline always comes from the same stage-2 path.
    """
    from repro.tune.space import default_candidate

    scored = [
        analyze(spec, arch, base_options, c, shape) for c in candidates
    ]
    feasible = [s for s in scored if s.feasible]
    rejected = [s for s in scored if not s.feasible]
    order = {id(s): i for i, s in enumerate(scored)}
    feasible.sort(key=lambda s: (-s.predicted_gflops, order[id(s)]))
    keep = max(keep_min, int(len(feasible) * keep_fraction))
    survivors = feasible[:keep]
    tail = feasible[keep:]
    default_name = default_candidate(arch, base_options).name()
    for s in list(tail):
        if s.candidate.name() == default_name:
            survivors.append(s)
            tail.remove(s)
    rejected.extend(tail)
    return survivors, rejected
