"""Stage 2 of the search: measure survivors, record the winner.

The driver is *seeded and resumable*:

* every source of randomness is the :class:`~repro.tune.space.SplitMix64`
  stream derived from ``TuneOptions.seed`` — same seed, same spec, same
  arch ⇒ same :class:`~repro.tune.records.TuningRecord`, bit for bit;
* every measurement is appended to the record store's journal before the
  next one starts, so an interrupted search picks up where it stopped
  (journal hits cost nothing against the measurement budget).

Search strategy follows the space size: spaces that fit the measurement
budget are swept exhaustively; larger ones run a greedy hill-climb from
the pruner's best prediction, with seeded random restarts when a climb
hits a local optimum.

Measurements run each candidate through the :class:`CompileService`
(content-addressed cache, single-flight, admission verifier — a config
the verifier rejects never produces a measurement) and time one mesh
pass on the cycle-accurate simulator.  The score is *useful* Gflops: the
caller's ``M·N·K`` flops divided by the time of the zero-padded problem
the mesh actually executes — which is precisely how a smaller chunk wins
on ragged shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.options import CompilerOptions
from repro.core.passes import reconcile_options
from repro.core.spec import GemmSpec
from repro.runtime.simulator import PerformanceSimulator
from repro.sunway.arch import SW26010PRO, ArchSpec
from repro.tune.pruner import PrunedCandidate, prune
from repro.tune.records import (
    TuningRecord,
    TuningRecordStore,
    record_key,
    shape_class,
)
from repro.tune.space import (
    SEARCH_SPACE_VERSION,
    Candidate,
    SplitMix64,
    default_candidate,
    enumerate_candidates,
    neighbors,
)


@dataclass(frozen=True)
class TuneOptions:
    """Knobs of one search run."""

    #: PRNG seed — the only entropy the driver ever sees.
    seed: int = 0
    #: Simulator-measurement budget (journal hits are free).
    max_measurements: int = 20
    #: Hill-climb restarts after the first climb stalls.
    restarts: int = 2
    #: Neighbours measured per climb step (best-predicted first).
    step_width: int = 3


@dataclass(frozen=True)
class Trial:
    """One measured candidate."""

    candidate: Candidate
    gflops: float
    from_journal: bool


@dataclass
class TuneResult:
    """Everything one search produced (the record is the useful part)."""

    record: TuningRecord
    trials: List[Trial] = field(default_factory=list)
    candidates_total: int = 0
    pruned: int = 0
    measured: int = 0
    resumed: int = 0
    strategy: str = "exhaustive"

    def describe(self) -> Dict[str, object]:
        return {
            **self.record.describe(),
            "strategy": self.strategy,
            "candidates": self.candidates_total,
            "pruned": self.pruned,
            "measured": self.measured,
            "resumed": self.resumed,
        }


class Tuner:
    """Two-stage, model-guided search over the tile/pipeline space."""

    def __init__(
        self,
        arch: ArchSpec = SW26010PRO,
        service: Optional[object] = None,
        store: Optional[TuningRecordStore] = None,
        guarded: bool = False,
    ) -> None:
        from repro.service import get_default_service

        self.arch = arch
        self.service = service if service is not None else get_default_service()
        if store is None:
            store = getattr(self.service, "tuning_store", None)
        self.store = store if store is not None else TuningRecordStore(None)
        self.simulator = PerformanceSimulator(
            arch, service=self.service, guarded=guarded
        )

    # -- measurement -------------------------------------------------------

    def measure(
        self,
        spec: GemmSpec,
        options: CompilerOptions,
        M: int,
        N: int,
        K: int,
        batch: int = 1,
    ) -> float:
        """Useful Gflops of one config on the (padded) concrete shape."""
        program = self.service.get_program(spec, self.arch, options)
        Mp, Np, Kp = program.padded_shape(M, N, K)
        perf = self.simulator.simulate(
            Mp, Np, Kp, options, batch=batch, spec=spec
        )
        useful_flops = 2.0 * M * N * K * batch
        return useful_flops / perf.seconds / 1e9

    # -- the search --------------------------------------------------------

    def tune(
        self,
        spec: Optional[GemmSpec] = None,
        M: int = 4096,
        N: int = 4096,
        K: int = 4096,
        batch: int = 1,
        base_options: Optional[CompilerOptions] = None,
        tune_options: Optional[TuneOptions] = None,
    ) -> TuneResult:
        spec = spec or (
            GemmSpec(batch_param="BS") if batch > 1 else GemmSpec()
        )
        opts = tune_options or TuneOptions()
        base = base_options or CompilerOptions.full()
        if spec.is_batched and not base.batch:
            base = base.with_(batch=True)
        base = reconcile_options(spec, base, self.arch)
        if base.tile_config is not None:
            # The base is the *search origin*, not a point pin.
            base = base.with_(tile_config=None)

        shape_cls = shape_class(M, N, K, batch)
        key = record_key(spec, self.arch, shape_cls)
        candidates = enumerate_candidates(self.arch, base)
        survivors, rejected = prune(
            spec, self.arch, base, candidates, shape=(M, N, K)
        )
        default = default_candidate(self.arch, base)
        pool: List[Candidate] = [s.candidate for s in survivors]
        if default.name() not in {c.name() for c in pool}:
            pool.insert(0, default)

        journal = self.store.journal_load(key)
        measured: Dict[str, float] = {}
        trials: List[Trial] = []
        state = {"measured": 0, "resumed": 0}

        def run(candidate: Candidate) -> float:
            name = candidate.name()
            if name in measured:
                return measured[name]
            if name in journal:
                gflops = journal[name]
                state["resumed"] += 1
                from_journal = True
            else:
                gflops = self.measure(
                    spec, candidate.apply(base), M, N, K, batch
                )
                journal[name] = gflops
                self.store.journal_save(key, journal)
                state["measured"] += 1
                from_journal = False
            measured[name] = gflops
            trials.append(Trial(candidate, gflops, from_journal))
            return gflops

        def budget_left() -> bool:
            return state["measured"] < opts.max_measurements

        # The baseline is always measured (and never counts as a win).
        default_gflops = run(default)

        if len(pool) <= opts.max_measurements:
            strategy = "exhaustive"
            for candidate in pool:
                if not budget_left():
                    break
                run(candidate)
        else:
            strategy = "hill-climb"
            self._hill_climb(pool, run, budget_left, opts)

        best_name = max(
            measured, key=lambda n: (measured[n], n == default.name())
        )
        best = next(c for c in [default] + pool if c.name() == best_name)
        if measured[best_name] <= default_gflops:
            best, best_name = default, default.name()
        record = TuningRecord(
            key=key,
            shape_class=shape_cls,
            arch_name=self.arch.name,
            space_version=SEARCH_SPACE_VERSION,
            candidate=best,
            best_gflops=measured[best_name],
            default_gflops=default_gflops,
            measurements=len(measured),
            seed=opts.seed,
        )
        self.store.put(record)
        self.store.journal_clear(key)
        return TuneResult(
            record=record,
            trials=trials,
            candidates_total=len(candidates),
            pruned=len(rejected),
            measured=state["measured"],
            resumed=state["resumed"],
            strategy=strategy,
        )

    def _hill_climb(self, pool, run, budget_left, opts: TuneOptions) -> None:
        """Greedy best-neighbour climb with seeded random restarts."""
        rng = SplitMix64(opts.seed)
        visited = set()
        current = pool[0]  # the pruner's best prediction
        for restart in range(opts.restarts + 1):
            if restart:
                fresh = [c for c in pool if c.name() not in visited]
                if not fresh or not budget_left():
                    break
                current = fresh[rng.randrange(len(fresh))]
            while budget_left():
                visited.add(current.name())
                current_gflops = run(current)
                steps = [
                    n
                    for n in neighbors(current, pool)
                    if n.name() not in visited
                ][: opts.step_width]
                if not steps:
                    break
                best_step, best_gflops = None, current_gflops
                for step in steps:
                    if not budget_left():
                        break
                    visited.add(step.name())
                    gflops = run(step)
                    if gflops > best_gflops:
                        best_step, best_gflops = step, gflops
                if best_step is None:
                    break  # local optimum — restart elsewhere
                current = best_step


def tune_spec(
    spec: Optional[GemmSpec] = None,
    M: int = 4096,
    N: int = 4096,
    K: int = 4096,
    batch: int = 1,
    arch: ArchSpec = SW26010PRO,
    service: Optional[object] = None,
    base_options: Optional[CompilerOptions] = None,
    tune_options: Optional[TuneOptions] = None,
) -> TuneResult:
    """One-call convenience wrapper around :class:`Tuner`."""
    tuner = Tuner(arch, service=service)
    return tuner.tune(
        spec,
        M=M,
        N=N,
        K=K,
        batch=batch,
        base_options=base_options,
        tune_options=tune_options,
    )
