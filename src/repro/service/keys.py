"""Content-addressed cache keys.

A compiled kernel is fully determined by the ``(spec, arch, options)``
triple — the generated code is *parametric* in M/N/K (§8.5), so shapes do
not enter the key.  The key is the SHA-256 of the canonical JSON encoding
of that triple plus a schema version, which makes it stable across
processes and hosts: two workers asked for the same kernel derive the
same key and can share one artifact store.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.runtime import serde
from repro.sunway.arch import SW26010PRO, ArchSpec

#: Bumped when the key derivation or compiler output shape changes in a
#: way that must invalidate existing artifacts.
CACHE_SCHEMA_VERSION = 1


def canonical_blob(obj: object) -> str:
    """Deterministic JSON text of any serde-encodable object."""
    return json.dumps(
        serde.encode(obj), sort_keys=True, separators=(",", ":")
    )


def cache_key(
    spec: GemmSpec,
    arch: Optional[ArchSpec] = None,
    options: Optional[CompilerOptions] = None,
) -> str:
    """Stable hex digest addressing one compiled kernel."""
    options = options or CompilerOptions()
    if options.fault_policy is not None or options.retry_policy is not None:
        # Fault injection and retry behaviour are runtime-only concerns:
        # the generated code is identical, so they must not fragment the
        # artifact store.  The service re-stamps the requested policies
        # onto cached programs (see CompileService._get).
        options = options.with_(fault_policy=None, retry_policy=None)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "serde": serde.SERDE_VERSION,
        "spec": canonical_blob(spec),
        "arch": canonical_blob(arch or SW26010PRO),
        "options": canonical_blob(options),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
