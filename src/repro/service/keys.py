"""Content-addressed cache keys.

A compiled kernel is fully determined by the ``(spec, arch, options)``
triple *and the pass pipeline that compiles it* — the generated code is
*parametric* in M/N/K (§8.5), so shapes do not enter the key.  The key
is the SHA-256 of the canonical JSON encoding of that triple plus the
pipeline identity and a schema version, which makes it stable across
processes and hosts: two workers asked for the same kernel derive the
same key and can share one artifact store.

Two normalisation steps keep the key honest:

* options are **reconciled** against the spec first
  (:func:`repro.core.passes.reconcile_options`) — the reconciled set is
  what the compiler actually compiles with, so requests that can only
  produce the same kernel (e.g. a fused spec with and without the
  explicit fusion option) share one key, while fused and unfused specs
  can never collide;
* the **pipeline identity** (:func:`repro.core.passes.pipeline_identity`)
  enters the payload, so editing the pass pipeline — disabling,
  replacing or reordering passes — invalidates exactly the artifacts it
  must.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Sequence, Union

from repro.core.options import CompilerOptions
from repro.core.passes import (
    Pass,
    build_pipeline,
    pipeline_identity,
    reconcile_options,
)
from repro.core.spec import GemmSpec
from repro.runtime import serde
from repro.sunway.arch import SW26010PRO, ArchSpec

#: Bumped when the key derivation or compiler output shape changes in a
#: way that must invalidate existing artifacts.  2: reconciled options +
#: pipeline identity entered the payload.  3: ``tile_config`` joined
#: ``CompilerOptions`` (autotuner) — pre-tile artifacts were compiled
#: before the kernel shape became request-addressable, so they are
#: invalidated wholesale rather than guessed at.  4: the multi-arch
#: backend refactor — ``kernel_backend`` joined ``CompilerOptions`` and
#: ``ArchSpec`` grew register-file fields (``simd_doubles``,
#: ``vector_registers``), so the canonical arch/options blobs changed
#: encoding.  5: the schedule IR — ``SchedulePolicy`` joined
#: ``CompilerOptions`` (its canonical pass tuple and the per-rewrite
#: ``schedule:<name>`` pipeline passes address rewritten timelines
#: separately from the fixed recipe).
CACHE_SCHEMA_VERSION = 5


def canonical_blob(obj: object) -> str:
    """Deterministic JSON text of any serde-encodable object."""
    return json.dumps(
        serde.encode(obj), sort_keys=True, separators=(",", ":")
    )


def cache_key(
    spec: GemmSpec,
    arch: Optional[ArchSpec] = None,
    options: Optional[CompilerOptions] = None,
    pipeline: Union[str, Sequence[Pass], None] = None,
) -> str:
    """Stable hex digest addressing one compiled kernel.

    ``pipeline`` overrides the pipeline component of the key: pass the
    pass list (or its precomputed identity string) of a customised
    compiler; by default the variant-aware default pipeline for the
    reconciled request is hashed.
    """
    arch = arch or SW26010PRO
    options = options or CompilerOptions()
    if options.fault_policy is not None or options.retry_policy is not None:
        # Fault injection and retry behaviour are runtime-only concerns:
        # the generated code is identical, so they must not fragment the
        # artifact store.  The service re-stamps the requested policies
        # onto cached programs (see CompileService._get).
        options = options.with_(fault_policy=None, retry_policy=None)
    if not options.verify:
        # The verifier never changes the generated code, so verified and
        # --no-verify requests address the same artifact.  A report-less
        # artifact served to a verifying caller is re-verified (and the
        # report persisted) by the store's verify-on-load path.
        options = options.with_(verify=True)
    # Arch-aware reconciliation also collapses a tile config restating
    # the arch's analytical default to ``tile_config=None``, so tuned
    # requests that land on the default share the default's artifact.
    options = reconcile_options(spec, options, arch)
    if pipeline is None:
        pipeline_id = pipeline_identity(build_pipeline(spec, arch, options))
    elif isinstance(pipeline, str):
        pipeline_id = pipeline
    else:
        pipeline_id = pipeline_identity(pipeline)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "serde": serde.SERDE_VERSION,
        "spec": canonical_blob(spec),
        "arch": canonical_blob(arch),
        "options": canonical_blob(options),
        "pipeline": pipeline_id,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
