"""The kernel compilation service.

``CompileService`` fronts :class:`~repro.core.pipeline.GemmCompiler`
with the two-tier cache production tensor compilers ship for exactly
this workload (swTVM, the TVM GEMM generator family): an in-process LRU
for the hot path and an on-disk artifact store shared across processes.
Lookups are *single-flight*: concurrent requests for the same
content-addressed key block on the one in-progress compilation instead
of compiling N times, while requests for distinct keys proceed in
parallel (``warmup`` fans a shape set out over a worker pool).

Every program consumer in the repo goes through a service —
:class:`~repro.runtime.simulator.PerformanceSimulator`, the bench
harness, and the CLI — so a sweep that touches dozens of near-identical
kernels compiles each distinct ``(spec, arch, options)`` triple once.
"""

from __future__ import annotations

import dataclasses
import inspect
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.options import CompilerOptions
from repro.errors import CompileTimeout
from repro.core.passes import reconcile_options
from repro.core.pipeline import GemmCompiler
from repro.core.spec import GemmSpec
from repro.faults import FaultInjector, FaultPolicy
from repro.runtime.program import CompiledProgram
from repro.service.cache import AdmissionLRUCache, LRUCache
from repro.service.keys import cache_key
from repro.service.store import ArtifactStore
from repro.sunway.arch import SW26010PRO, ArchSpec

#: One compilation request: the content-addressed triple.
Request = Tuple[GemmSpec, ArchSpec, CompilerOptions]

CompileFn = Callable[[GemmSpec, ArchSpec, CompilerOptions], CompiledProgram]


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one :class:`CompileService`."""

    #: Hot-tier capacity (distinct kernels held in process memory).
    memory_capacity: int = 64
    #: Warm-tier directory; ``None`` disables disk persistence.
    cache_dir: Optional[Path] = None
    #: ``False`` bypasses both tiers (the CLI's ``--no-cache``).
    enabled: bool = True
    #: Worker threads of the service's priority worker pool (used by
    #: :meth:`CompileService.warmup`, shared with the serving daemon).
    workers: int = 4
    #: Optional fault plane for the artifact store (chaos testing of the
    #: quarantine/recompile path); ``None`` or disabled means no faults.
    fault_policy: Optional[FaultPolicy] = None
    #: Hot-tier admission gate: a key is only admitted to a *full*
    #: memory tier after this many accesses (1 = always admit, the
    #: library default; the serving daemon runs with 2 so one tenant's
    #: cold sweep cannot evict every other tenant's hot kernels).
    admission_threshold: int = 1


@dataclass
class _Inflight:
    """Single-flight rendezvous for one key."""

    done: threading.Event = field(default_factory=threading.Event)
    program: Optional[CompiledProgram] = None
    error: Optional[BaseException] = None
    waiters: int = 0


def _default_compile(
    spec: GemmSpec,
    arch: ArchSpec,
    options: CompilerOptions,
    timeout_s: Optional[float] = None,
) -> CompiledProgram:
    return GemmCompiler(arch, options).compile(spec, timeout_s=timeout_s)


def _accepts_timeout(compile_fn) -> bool:
    """Whether a compile function takes the ``timeout_s`` keyword.

    Custom ``compile_fn`` callables (tests, alternative compilers) may
    predate the deadline API; for those the service falls back to a
    post-hoc wall-time check."""
    try:
        parameters = inspect.signature(compile_fn).parameters.values()
    except (TypeError, ValueError):  # builtins, exotic callables
        return False
    return any(
        p.name == "timeout_s" or p.kind is inspect.Parameter.VAR_KEYWORD
        for p in parameters
    )


class CompileService:
    """Content-addressed, single-flight kernel compilation."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        compile_fn: Optional[CompileFn] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._compile = compile_fn or _default_compile
        self._compile_takes_timeout = _accepts_timeout(self._compile)
        if self.config.admission_threshold > 1:
            self._memory: LRUCache[CompiledProgram] = AdmissionLRUCache(
                self.config.memory_capacity,
                admission_threshold=self.config.admission_threshold,
            )
        else:
            self._memory = LRUCache(self.config.memory_capacity)
        injector = None
        if self.config.fault_policy is not None and self.config.fault_policy.enabled:
            injector = FaultInjector(self.config.fault_policy).fork("artifact")
        self._store = (
            ArtifactStore(self.config.cache_dir, injector=injector)
            if self.config.cache_dir is not None
            else None
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Inflight] = {}
        #: shared priority worker pool (lazily built for warmup, or
        #: attached by the serving daemon so warmup and request traffic
        #: schedule through one FairPriorityQueue)
        self._pool = None
        self._pool_owned = False
        #: lazily-built tuning-record store (imported on first use so the
        #: service module does not depend on repro.tune at import time)
        self._tuning_store = None
        self.tuning_lookups = 0
        self.tuning_hits = 0
        self.requests = 0
        self.bypassed = 0
        self.deduped = 0
        self.flight_retries = 0
        self.flight_timeouts = 0
        self.compile_count = 0
        self.compile_seconds_total = 0.0
        self.compile_seconds_max = 0.0

    # -- public API ---------------------------------------------------------

    def key_for(
        self,
        spec: GemmSpec,
        arch: Optional[ArchSpec] = None,
        options: Optional[CompilerOptions] = None,
    ) -> str:
        return cache_key(spec, arch or SW26010PRO, options or CompilerOptions())

    def get_program(
        self,
        spec: GemmSpec,
        arch: Optional[ArchSpec] = None,
        options: Optional[CompilerOptions] = None,
        timeout_s: Optional[float] = None,
        shape_hint: Optional[Tuple[int, ...]] = None,
    ) -> CompiledProgram:
        """The cached compile: memory → disk → single-flight compile.

        ``timeout_s`` is a wall-clock deadline for the *whole* request,
        including time spent waiting on another request's in-progress
        compilation; overruns raise :class:`repro.errors.CompileTimeout`.

        ``shape_hint`` — ``(M, N, K)`` or ``(M, N, K, batch)`` — lets
        the service consult the tuning-record store: a default-config
        request whose shape class has a recorded winner is steered to
        the tuned configuration before key derivation, so tuned shape
        classes compile (and cache) straight to their best config.
        """
        return self.get_program_with_source(
            spec, arch, options, timeout_s=timeout_s, shape_hint=shape_hint
        )[0]

    def get_program_with_source(
        self,
        spec: GemmSpec,
        arch: Optional[ArchSpec] = None,
        options: Optional[CompilerOptions] = None,
        timeout_s: Optional[float] = None,
        shape_hint: Optional[Tuple[int, ...]] = None,
    ) -> Tuple[CompiledProgram, str]:
        """:meth:`get_program` plus where the program came from:
        ``memory``, ``disk``, ``deduped`` (another request's in-flight
        compile) or ``compiled``.  The serving daemon reports this per
        response so clients — and the load-generator benchmark — can
        measure cache hit rates without scraping server logs."""
        arch = arch or SW26010PRO
        options = options or CompilerOptions()
        options = self._apply_tuning(spec, arch, options, shape_hint)
        return self._get(spec, arch, options, timeout_s=timeout_s)

    def reconciled_key(
        self,
        spec: GemmSpec,
        arch: Optional[ArchSpec] = None,
        options: Optional[CompilerOptions] = None,
    ) -> str:
        """The cache key a request will actually be served under.

        Unlike :meth:`key_for` this reconciles the options first — the
        same normalisation :meth:`get_program` applies — so distinct
        descriptors that compile identically (inert knobs, ``--no-verify``)
        map to one key.  The load generator uses this to count unique
        kernels a trace will demand."""
        arch = arch or SW26010PRO
        options = reconcile_options(spec, options or CompilerOptions(), arch)
        return cache_key(spec, arch, options)

    def is_cached(
        self,
        spec: GemmSpec,
        arch: Optional[ArchSpec] = None,
        options: Optional[CompilerOptions] = None,
        shape_hint: Optional[Tuple[int, ...]] = None,
    ) -> bool:
        """Whether a request would be served without compiling.

        A cheap, side-effect-free probe of the hot tier, the in-flight
        rendezvous (a waiter dedups onto someone else's compile — warm
        enough) and the artifact store's path, in that order.  The
        serving daemon's brownout mode uses this to tell cache hits (to
        keep serving) from compile misses (to fast-fail) without
        spending a worker to find out.  The LRU recency order and the
        request/hit counters are untouched (only the tuning-steering
        lookup runs, since it decides which key the request would
        actually be served under)."""
        if not self.config.enabled:
            return False
        arch = arch or SW26010PRO
        options = options or CompilerOptions()
        options = self._apply_tuning(spec, arch, options, shape_hint)
        options = reconcile_options(spec, options, arch)
        key = cache_key(spec, arch, options)
        with self._lock:
            if key in self._memory or key in self._inflight:
                return True
        return self._store is not None and self._store.path_for(key).exists()

    def compile(
        self,
        spec: GemmSpec,
        arch: Optional[ArchSpec] = None,
        options: Optional[CompilerOptions] = None,
        timeout_s: Optional[float] = None,
        shape_hint: Optional[Tuple[int, ...]] = None,
    ) -> CompiledProgram:
        """Alias of :meth:`get_program` (the KernelService verb)."""
        return self.get_program(
            spec, arch, options, timeout_s=timeout_s, shape_hint=shape_hint
        )

    def set_compile_fn(self, compile_fn: CompileFn) -> None:
        """Swap the compile function behind the cache/single-flight stack.

        The serving daemon uses this seam to interpose
        :class:`~repro.serve.isolation.ProcessIsolation`: compilation
        moves into recyclable worker subprocesses while every layer
        above — content-addressed keys, the two cache tiers, the
        in-flight rendezvous, admission — stays unchanged."""
        self._compile = compile_fn
        self._compile_takes_timeout = _accepts_timeout(compile_fn)

    def attach_worker_pool(self, pool) -> None:
        """Share the serving daemon's priority worker pool.

        Once attached, :meth:`warmup` submits through it (at ``warmup``
        priority) instead of building a private pool — so precompilation
        traffic schedules behind the daemon's interactive and batch
        requests on the exact same :class:`~repro.serve.queue.FairPriorityQueue`
        and can never starve them."""
        if self._pool is not None and self._pool_owned and self._pool is not pool:
            self._pool.shutdown(drain=True)
        self._pool = pool
        self._pool_owned = False

    def worker_pool(self, workers: Optional[int] = None):
        """The attached pool, or a lazily created private one."""
        with self._lock:
            if self._pool is None:
                from repro.serve.workers import WorkerPool

                self._pool = WorkerPool(
                    max(1, workers or self.config.workers),
                    name="swgemm-service",
                )
                self._pool_owned = True
            return self._pool

    def close(self) -> None:
        """Drain and shut down the private worker pool, if one exists."""
        with self._lock:
            pool, owned = self._pool, self._pool_owned
            self._pool = None
            self._pool_owned = False
        if pool is not None and owned:
            pool.shutdown(drain=True)

    def warmup(
        self,
        requests: Optional[Sequence[Request]] = None,
        workers: Optional[int] = None,
        priority: str = "warmup",
        tenant: str = "warmup",
    ) -> List[Dict[str, object]]:
        """Precompile a request set through the priority worker pool.

        Every job is submitted at ``warmup`` priority (the lowest
        class), so on a daemon-attached pool interactive and batch
        requests queued concurrently are always served first — warmup
        can saturate idle workers but never starve live traffic.
        Returns one row per request: key, variant, where the program
        came from (``memory``/``disk``/``compiled``) and the wall time
        spent.  ``workers`` only sizes a lazily created private pool;
        an attached pool keeps its own size.
        """
        requests = list(requests if requests is not None else standard_requests())
        pool = self.worker_pool(workers)

        def one(request: Request) -> Dict[str, object]:
            spec, arch, options = request
            started = time.perf_counter()
            _, source = self._get(spec, arch, options)
            return {
                "key": self.key_for(spec, arch, options),
                "variant": options.variant_name()
                + (f"+{options.fusion}" if options.fusion != "none" else "")
                + ("+batch" if spec.is_batched else ""),
                "batched": spec.is_batched,
                "source": source,
                "seconds": time.perf_counter() - started,
            }

        futures = [
            pool.submit(
                (lambda request=request: one(request)),
                priority=priority,
                tenant=tenant,
            )
            for request in requests
        ]
        return [future.result() for future in futures]

    def clear(self) -> Dict[str, int]:
        """Drop both tiers; returns how many entries each held."""
        with self._lock:
            memory = self._memory.clear()
        disk = self._store.clear() if self._store else 0
        return {"memory": memory, "disk": disk}

    def stats(self) -> Dict[str, object]:
        """Structured report over both tiers and compile latencies."""
        with self._lock:
            count = self.compile_count
            report: Dict[str, object] = {
                "enabled": self.config.enabled,
                "requests": self.requests,
                "bypassed": self.bypassed,
                "single_flight_deduped": self.deduped,
                "single_flight_retries": self.flight_retries,
                "single_flight_timeouts": self.flight_timeouts,
                "memory": self._memory.stats(),
                "compiles": {
                    "count": count,
                    "total_seconds": self.compile_seconds_total,
                    "mean_ms": (
                        1e3 * self.compile_seconds_total / count if count else 0.0
                    ),
                    "max_ms": 1e3 * self.compile_seconds_max,
                },
                "tuning": {
                    "lookups": self.tuning_lookups,
                    "hits": self.tuning_hits,
                },
            }
            pool = self._pool
        # Per-priority-class execution counts of the shared worker pool
        # (warmup vs batch vs interactive) — absent until a pool exists.
        report["workers"] = pool.stats() if pool is not None else None
        report["tuning"]["records"] = len(self.tuning_store.keys())
        if self._store is not None:
            report["disk"] = self._store.stats()
            report["persistent"] = self._store.load_persistent_stats()
        return report

    @property
    def store(self) -> Optional[ArtifactStore]:
        return self._store

    @property
    def tuning_store(self):
        """The tuning-record store, rooted next to the artifact store
        (``<cache-dir>/tuning/``) or in-memory for cache-less services."""
        if self._tuning_store is None:
            from repro.tune.records import TuningRecordStore

            root = (
                self.config.cache_dir / "tuning"
                if self.config.cache_dir is not None
                else None
            )
            self._tuning_store = TuningRecordStore(root)
        return self._tuning_store

    # -- internals -----------------------------------------------------------

    def _apply_tuning(
        self,
        spec: GemmSpec,
        arch: ArchSpec,
        options: CompilerOptions,
        shape_hint: Optional[Tuple[int, ...]],
    ) -> CompilerOptions:
        """Steer a default-config request to its shape class's recorded
        winner.

        Only requests that leave every tunable knob at its default are
        eligible: an explicit ``tile_config`` (or a deliberately reduced
        variant — no-asm, no-RMA, no-hiding ablations) states intent the
        tuner must not override.
        """
        if shape_hint is None or options.tile_config is not None:
            return options
        defaults = CompilerOptions()
        if (
            options.use_asm,
            options.enable_rma,
            options.enable_latency_hiding,
        ) != (
            defaults.use_asm,
            defaults.enable_rma,
            defaults.enable_latency_hiding,
        ):
            return options
        from repro.tune.records import record_key, shape_class

        with self._lock:
            self.tuning_lookups += 1
        record = self.tuning_store.get(
            record_key(spec, arch, shape_class(*shape_hint))
        )
        if record is None:
            return options
        with self._lock:
            self.tuning_hits += 1
        self._flush_persistent({"tuning_hits": 1})
        return record.apply(options)

    @staticmethod
    def _restamp(
        program: CompiledProgram, options: CompilerOptions
    ) -> CompiledProgram:
        """Re-apply the caller's runtime-only knobs to a cached program.

        Fault/retry policies are excluded from cache keys (they change
        execution, not code generation), so a hit may carry a different
        policy than the caller asked for — hand back a copy stamped with
        the requested options."""
        current = getattr(program, "options", None)
        if current is None or current == options:
            return program
        return dataclasses.replace(program, options=options)

    def _ensure_verified(self, program: CompiledProgram) -> CompiledProgram:
        """Attach a verification report to a report-less cached program.

        A program can sit in the hot tier (or a single-flight result)
        without a report when it was compiled for a ``--no-verify``
        request; a verifying caller must still get admission-checked
        code, so verify in place — the report attaches to the cached
        object and the work happens once.

        Stub programs without the attribute (test doubles injected via
        ``compile_fn``) are passed through untouched — only a real
        ``CompiledProgram`` that explicitly carries ``verification=None``
        needs the re-check."""
        if getattr(program, "verification", False) is None:
            from repro.verify import admit, verify_program

            program.verification = admit(verify_program(program))
        return program

    def _get(
        self,
        spec: GemmSpec,
        arch: ArchSpec,
        options: CompilerOptions,
        timeout_s: Optional[float] = None,
    ) -> Tuple[CompiledProgram, str]:
        # Reconcile up front (preserving the runtime-only fault/retry
        # policies, which reconciliation never touches): the reconciled
        # set is what the compiler compiles with, what cache_key hashes,
        # and what _restamp stamps onto cache hits — a hit can never hand
        # back options the compile itself would have rewritten.
        options = reconcile_options(spec, options, arch)
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )

        def remaining() -> Optional[float]:
            return None if deadline is None else deadline - time.monotonic()

        with self._lock:
            self.requests += 1
        if not self.config.enabled:
            with self._lock:
                self.bypassed += 1
            program, _ = self._compile_timed(
                spec, arch, options, timeout_s=remaining()
            )
            return program, "compiled"

        key = cache_key(spec, arch, options)
        while True:
            with self._lock:
                cached = self._memory.get(key)
                if cached is not None:
                    if options.verify:
                        cached = self._ensure_verified(cached)
                    self._flush_persistent({"requests": 1, "memory_hits": 1})
                    return self._restamp(cached, options), "memory"
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Inflight()
                    self._inflight[key] = flight
                    owner = True
                else:
                    flight.waiters += 1
                    self.deduped += 1
                    owner = False

            if owner:
                break
            if not flight.done.wait(timeout=remaining()):
                # Deadline expired while another request compiled this
                # key: the contract is wall time for the *whole* request,
                # so give up loudly instead of hanging on the stranger's
                # compile.
                with self._lock:
                    self.flight_timeouts += 1
                raise CompileTimeout(
                    f"compile deadline of {timeout_s}s exceeded while "
                    "waiting on an in-flight compilation of the same "
                    "kernel",
                    timeout_s=timeout_s or 0.0,
                )
            if flight.error is None:
                assert flight.program is not None
                program = flight.program
                if options.verify:
                    program = self._ensure_verified(program)
                self._flush_persistent({"requests": 1, "deduped": 1})
                return self._restamp(program, options), "deduped"
            # The owner's compile failed.  Its error may be transient
            # (fault injection, a flaky disk) and belongs to the owner's
            # request anyway — instead of propagating a stranger's
            # exception, loop and re-attempt as the new owner.
            with self._lock:
                self.flight_retries += 1

        source = "compiled"
        try:
            verify_on_load = options.verify
            program = (
                self._store.get(key, verify_on_load=verify_on_load)
                if self._store
                else None
            )
            if program is not None:
                source = "disk"
                self._flush_persistent({"requests": 1, "disk_hits": 1})
            else:
                program, elapsed = self._compile_timed(
                    spec, arch, options, timeout_s=remaining()
                )
                if self._store is not None:
                    self._store.put(key, program)
                self._flush_persistent(
                    {"requests": 1, "compiles": 1, "compile_seconds": elapsed}
                )
        except BaseException as exc:
            with self._lock:
                del self._inflight[key]
            flight.error = exc
            flight.done.set()
            raise
        with self._lock:
            self._memory.put(key, program)
            del self._inflight[key]
        flight.program = program
        flight.done.set()
        return self._restamp(program, options), source

    def _compile_timed(
        self,
        spec: GemmSpec,
        arch: ArchSpec,
        options: CompilerOptions,
        timeout_s: Optional[float] = None,
    ) -> Tuple[CompiledProgram, float]:
        if timeout_s is not None and timeout_s <= 0:
            raise CompileTimeout(
                "compile deadline already exhausted before compilation "
                "started",
                timeout_s=timeout_s,
            )
        started = time.perf_counter()
        if self._compile_takes_timeout:
            program = self._compile(spec, arch, options, timeout_s=timeout_s)
        else:
            program = self._compile(spec, arch, options)
        elapsed = time.perf_counter() - started
        if (
            timeout_s is not None
            and not self._compile_takes_timeout
            and elapsed > timeout_s
        ):
            # Custom compile functions without deadline support still get
            # the structured error, just after the fact.
            raise CompileTimeout(
                f"compilation took {elapsed:.3f}s, over the {timeout_s}s "
                "deadline",
                timeout_s=timeout_s,
            )
        with self._lock:
            self.compile_count += 1
            self.compile_seconds_total += elapsed
            self.compile_seconds_max = max(self.compile_seconds_max, elapsed)
        return program, elapsed

    def _flush_persistent(self, deltas: Dict[str, float]) -> None:
        if self._store is not None:
            self._store.bump_persistent_stats(deltas)


class KernelService(CompileService):
    """Deprecated name of :class:`CompileService`.

    Kept as a warning subclass (not a bare alias): existing constructor
    call sites keep working — instances remain ``CompileService``s in
    every ``isinstance`` sense — but each construction warns once with
    the migration hint while the codebase moves to :mod:`repro.api`.
    """

    def __init__(self, *args, **kwargs) -> None:
        import warnings

        warnings.warn(
            "KernelService is deprecated; construct CompileService or use "
            "the repro.api facade (api.compile / api.tune)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


# ---------------------------------------------------------------------------
# Standard warmup set and the shared default service
# ---------------------------------------------------------------------------


def standard_requests(arch: Optional[ArchSpec] = None) -> List[Request]:
    """The kernels a production deployment serves constantly: the four
    §8.1 breakdown variants, batched GEMM, and both fusion patterns."""
    arch = arch or SW26010PRO
    requests: List[Request] = [
        (GemmSpec(), arch, CompilerOptions.baseline()),
        (GemmSpec(), arch, CompilerOptions.with_asm()),
        (GemmSpec(), arch, CompilerOptions.with_rma()),
        (GemmSpec(), arch, CompilerOptions.full()),
        (
            GemmSpec(batch_param="BS"),
            arch,
            CompilerOptions.full().with_(batch=True),
        ),
        (
            GemmSpec(prologue_func="quant"),
            arch,
            CompilerOptions.full().with_(fusion="prologue", prologue_func="quant"),
        ),
        (
            GemmSpec(epilogue_func="sigmoid"),
            arch,
            CompilerOptions.full().with_(fusion="epilogue", epilogue_func="sigmoid"),
        ),
    ]
    return requests


_default_service: Optional[CompileService] = None
_default_lock = threading.Lock()


def get_default_service() -> CompileService:
    """The process-wide memory-only service library callers share."""
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = CompileService()
        return _default_service


def set_default_service(service: Optional[CompileService]) -> None:
    """Replace (or with ``None`` reset) the shared default service."""
    global _default_service
    with _default_lock:
        _default_service = service
