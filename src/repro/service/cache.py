"""In-process LRU program cache (the hot tier).

A plain ``OrderedDict`` LRU with hit/miss/eviction counters.  The
:class:`~repro.service.service.CompileService` holds exactly one and
serialises access through its own lock, so the cache itself carries no
locking.

:class:`AdmissionLRUCache` adds the *hot-tile admission layer* the
multi-tenant daemon runs with: once the cache is full, a new key is
only admitted after it has been requested ``admission_threshold`` times
(a TinyLFU-style frequency gate with periodic aging).  One tenant
scanning a thousand one-off shapes then cannot evict the popular
kernels every other tenant keeps hitting — cold keys stay on disk,
popular shapes stay memory-resident across tenants.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, List, Optional, TypeVar

from repro.errors import ConfigurationError

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Least-recently-used mapping with instrumentation counters."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"LRU capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[str, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: V) -> None:
        """Insert, evicting the least recently used entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def keys(self) -> List[str]:
        """Keys in LRU → MRU order (first key is the next eviction)."""
        return list(self._entries)

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class AdmissionLRUCache(LRUCache[V]):
    """LRU with a frequency-based admission gate (the hot tier of the
    serving daemon).

    Every ``get`` — hit or miss — counts as one access of the key.  A
    ``put`` into a *full* cache only admits keys whose access count has
    reached ``admission_threshold``; colder keys are rejected (counted,
    not stored) and keep living in the disk tier.  While the cache has
    spare capacity everything is admitted — the gate only arbitrates
    genuine contention.  The frequency table is bounded: when it grows
    past ``8 × capacity`` entries every count is halved and zeros are
    dropped, so long-gone keys age out instead of leaking memory.
    """

    def __init__(self, capacity: int = 64, admission_threshold: int = 2) -> None:
        super().__init__(capacity)
        if admission_threshold < 1:
            raise ConfigurationError(
                f"admission_threshold must be >= 1, got {admission_threshold}"
            )
        self.admission_threshold = admission_threshold
        self._freq: Dict[str, int] = {}
        self.admission_rejected = 0

    def _touch(self, key: str) -> None:
        self._freq[key] = self._freq.get(key, 0) + 1
        if len(self._freq) > 8 * self.capacity:
            # Age: halve every count, drop the zeros (TinyLFU reset).
            self._freq = {k: c // 2 for k, c in self._freq.items() if c // 2}

    def get(self, key: str) -> Optional[V]:
        self._touch(key)
        return super().get(key)

    def put(self, key: str, value: V) -> None:
        if (
            key not in self._entries
            and len(self._entries) >= self.capacity
            and self._freq.get(key, 0) < self.admission_threshold
        ):
            self.admission_rejected += 1
            return
        super().put(key, value)

    def stats(self) -> Dict[str, int]:
        report = super().stats()
        report["admission_threshold"] = self.admission_threshold
        report["admission_rejected"] = self.admission_rejected
        return report
