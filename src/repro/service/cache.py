"""In-process LRU program cache (the hot tier).

A plain ``OrderedDict`` LRU with hit/miss/eviction counters.  The
:class:`~repro.service.service.CompileService` holds exactly one and
serialises access through its own lock, so the cache itself carries no
locking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, List, Optional, TypeVar

from repro.errors import ConfigurationError

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Least-recently-used mapping with instrumentation counters."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"LRU capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[str, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: V) -> None:
        """Insert, evicting the least recently used entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def keys(self) -> List[str]:
        """Keys in LRU → MRU order (first key is the next eviction)."""
        return list(self._entries)

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
