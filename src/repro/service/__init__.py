"""Kernel compilation service.

Content-addressed caching and single-flight batched compilation for the
GEMM kernel generator — the substrate that makes the compiler cheap to
call from serving paths (see ROADMAP.md).  Three layers:

* :mod:`repro.service.keys` — stable cache keys over
  ``(GemmSpec, ArchSpec, CompilerOptions)``;
* :mod:`repro.service.cache` / :mod:`repro.service.store` — the
  in-process LRU hot tier and the on-disk artifact store;
* :mod:`repro.service.service` — :class:`CompileService`, which
  deduplicates concurrent requests and precompiles shape sets.
"""

from repro.service.cache import AdmissionLRUCache, LRUCache
from repro.service.keys import CACHE_SCHEMA_VERSION, cache_key, canonical_blob
from repro.service.service import (
    CompileService,
    KernelService,
    ServiceConfig,
    get_default_service,
    set_default_service,
    standard_requests,
)
from repro.service.store import ArtifactStore, CACHE_DIR_ENV, default_cache_dir

__all__ = [
    "AdmissionLRUCache",
    "ArtifactStore",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "CompileService",
    "KernelService",
    "LRUCache",
    "ServiceConfig",
    "cache_key",
    "canonical_blob",
    "default_cache_dir",
    "get_default_service",
    "set_default_service",
    "standard_requests",
]
