"""On-disk artifact store (the warm tier).

One JSON file per content-addressed key under a cache directory, written
atomically (temp file + rename) so concurrent writers — several CLI
invocations, a warmup fleet — can share the directory without torn
artifacts.  Corrupt or version-skewed artifacts are treated as misses
and *quarantined* to ``<cache-dir>/quarantine/`` rather than silently
deleted, so an operator can diagnose what corrupted them; the caller
recompiles and the fresh artifact overwrites the key.

The store also keeps cumulative service counters in ``stats.json`` so a
later ``swgemm cache stats`` invocation can report the hits a previous
``swgemm perf`` run produced — per-process counters alone would vanish
with the process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.faults import FaultInjector
from repro.runtime.program import CompiledProgram

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "SWGEMM_CACHE_DIR"

_STATS_FILE = "stats.json"
_SUFFIX = ".json"
_QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """``$SWGEMM_CACHE_DIR`` or ``~/.cache/swgemm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "swgemm"


class ArtifactStore:
    """Directory of serialized :class:`CompiledProgram` artifacts."""

    def __init__(
        self, root: Path, injector: Optional[FaultInjector] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0
        self.writes = 0
        self.quarantined = 0
        self.verified_on_load = 0
        self.verify_rejected = 0
        #: optional fault plane corrupting freshly written artifacts
        #: (chaos testing of the quarantine/recompile path)
        self.injector = injector

    # -- artifact files ----------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE_DIR

    def get(
        self, key: str, verify_on_load: bool = True
    ) -> Optional[CompiledProgram]:
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            program = CompiledProgram.from_dict(data["program"])
        except FileNotFoundError:
            self.disk_misses += 1
            return None
        except Exception:
            # Corrupt, truncated or version-skewed artifact: quarantine it
            # for diagnosis and report a miss so the caller recompiles.
            self._quarantine(path)
            self.disk_misses += 1
            return None
        if verify_on_load and program.verification is None:
            # Legacy (pre-verifier) or --no-verify artifact: prove it safe
            # before serving the hit.  A pass self-heals the artifact (the
            # report is persisted so the work happens once per store); a
            # failure quarantines it exactly like corruption — the caller
            # recompiles through the admission gate.
            from repro.verify import admit, verify_program

            try:
                program.verification = admit(verify_program(program))
            except Exception:
                self._quarantine(path)
                self.verify_rejected += 1
                self.bump_persistent_stats({"verify_rejected": 1})
                self.disk_misses += 1
                return None
            self.verified_on_load += 1
            self.bump_persistent_stats({"verified_on_load": 1})
            self.put(key, program)
        self.disk_hits += 1
        return program

    def put(self, key: str, program: CompiledProgram) -> Path:
        payload = {
            "key": key,
            "created": time.time(),
            "codegen_seconds": program.codegen_seconds,
            "variant": program.options.variant_name(),
            "program": program.to_dict(),
        }
        path = self.path_for(key)
        self._atomic_write(path, json.dumps(payload))
        self.writes += 1
        if self.injector is not None:
            # The fault plane may truncate the artifact we just landed —
            # the next get() must treat it as a miss and quarantine it.
            self.injector.corrupt_artifact(path)
        return path

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt artifact aside (collision-safe) for diagnosis."""
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / path.name
            serial = 0
            while target.exists():
                serial += 1
                target = qdir / f"{path.stem}.{serial}{path.suffix}"
            os.replace(path, target)
        except OSError:
            # Quarantine is best-effort; never let it turn a cache miss
            # into a hard failure.  Fall back to deleting the artifact so
            # the corrupt bytes cannot be served again.
            path.unlink(missing_ok=True)
        self.quarantined += 1
        self.bump_persistent_stats({"quarantined": 1})

    def keys(self) -> List[str]:
        return sorted(
            p.stem for p in self.root.glob(f"*{_SUFFIX}") if p.name != _STATS_FILE
        )

    def total_bytes(self) -> int:
        return sum(
            p.stat().st_size
            for p in self.root.glob(f"*{_SUFFIX}")
            if p.name != _STATS_FILE
        )

    def clear(self) -> int:
        """Remove every artifact and the persistent counters."""
        removed = 0
        for p in self.root.glob(f"*{_SUFFIX}"):
            p.unlink(missing_ok=True)
            if p.name != _STATS_FILE:
                removed += 1
        return removed

    # -- persistent counters ------------------------------------------------

    def load_persistent_stats(self) -> Dict[str, float]:
        try:
            data = json.loads((self.root / _STATS_FILE).read_text())
            return data if isinstance(data, dict) else {}
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    def bump_persistent_stats(self, deltas: Dict[str, float]) -> Dict[str, float]:
        """Merge counter deltas into ``stats.json`` (load-modify-rename)."""
        totals = self.load_persistent_stats()
        for name, delta in deltas.items():
            if delta:
                totals[name] = totals.get(name, 0) + delta
        totals["updated"] = time.time()
        self._atomic_write(self.root / _STATS_FILE, json.dumps(totals, sort_keys=True))
        return totals

    # -- helpers -----------------------------------------------------------

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> Dict[str, object]:
        qdir = self.quarantine_dir
        quarantine_files = (
            len(list(qdir.glob(f"*{_SUFFIX}"))) if qdir.is_dir() else 0
        )
        return {
            "dir": str(self.root),
            "artifacts": len(self.keys()),
            "bytes": self.total_bytes(),
            "hits": self.disk_hits,
            "misses": self.disk_misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "quarantine_files": quarantine_files,
            "verified_on_load": self.verified_on_load,
            "verify_rejected": self.verify_rejected,
        }
