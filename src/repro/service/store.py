"""On-disk artifact store (the warm tier).

One JSON file per content-addressed key under a cache directory, written
atomically (temp file + rename) so concurrent writers — several CLI
invocations, a warmup fleet, the serving daemon's worker pool — can
share the directory without torn artifacts.  Corrupt or version-skewed
artifacts are treated as misses and *quarantined* to
``<cache-dir>/quarantine/`` rather than silently deleted, so an
operator can diagnose what corrupted them; the caller recompiles and
the fresh artifact overwrites the key.

Artifacts are *sharded* by content-hash prefix: key ``ca7382…`` lives
at ``<cache-dir>/ca/ca7382….json``.  A flat directory degrades badly at
serving scale (every lookup readdirs thousands of entries, rsync/ls
choke), and hash-prefix shards spread a content-addressed keyspace
uniformly by construction.  Legacy flat stores migrate transparently —
and idempotently — on open: any artifact found at the root is moved
into its shard, re-running the migration is a no-op, and a flat and a
sharded copy of the same key resolve to the sharded one.

The store also keeps cumulative service counters in ``stats.json`` so a
later ``swgemm cache stats`` invocation can report the hits a previous
``swgemm perf`` run produced — per-process counters alone would vanish
with the process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.faults import FaultInjector
from repro.runtime.program import CompiledProgram

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "SWGEMM_CACHE_DIR"

_STATS_FILE = "stats.json"
_POISON_FILE = "poison-keys.json"
_SUFFIX = ".json"
_QUARANTINE_DIR = "quarantine"

#: Hex characters of the key prefix that name a shard directory (256
#: shards over a uniformly distributed content hash).
SHARD_WIDTH = 2

_HEX = set("0123456789abcdef")


def shard_for(key: str) -> str:
    """Shard directory name for a content-addressed key."""
    prefix = key[:SHARD_WIDTH].lower()
    if len(prefix) == SHARD_WIDTH and all(c in _HEX for c in prefix):
        return prefix
    # Non-hex or degenerate keys (test doubles) share a fallback shard.
    return "_" * SHARD_WIDTH


def _is_shard_dir(path: Path) -> bool:
    name = path.name
    return len(name) == SHARD_WIDTH and (
        all(c in _HEX for c in name) or name == "_" * SHARD_WIDTH
    )


def default_cache_dir() -> Path:
    """``$SWGEMM_CACHE_DIR`` or ``~/.cache/swgemm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "swgemm"


class ArtifactStore:
    """Directory of serialized :class:`CompiledProgram` artifacts."""

    def __init__(
        self, root: Path, injector: Optional[FaultInjector] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.migrated = self._migrate_flat_layout()
        self.disk_hits = 0
        self.disk_misses = 0
        self.writes = 0
        self.quarantined = 0
        self.verified_on_load = 0
        self.verify_rejected = 0
        #: optional fault plane corrupting freshly written artifacts
        #: (chaos testing of the quarantine/recompile path)
        self.injector = injector

    # -- artifact files ----------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / shard_for(key) / f"{key}{_SUFFIX}"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE_DIR

    def _migrate_flat_layout(self) -> int:
        """Move pre-sharding artifacts from the root into their shards.

        Idempotent by construction: a second run finds nothing flat to
        move, and a key that somehow exists both flat and sharded keeps
        the sharded copy (the flat duplicate is dropped).  Best-effort —
        a read-only legacy store still serves flat artifacts via the
        fallback in :meth:`get`."""
        moved = 0
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            if path.name in (_STATS_FILE, _POISON_FILE):
                continue
            target = self.path_for(path.stem)
            try:
                target.parent.mkdir(exist_ok=True)
                if target.exists():
                    path.unlink()
                else:
                    os.replace(path, target)
            except OSError:
                continue
            moved += 1
        if moved:
            self.bump_persistent_stats({"migrated": moved})
        return moved

    def _artifact_paths(self) -> List[Path]:
        """Every artifact file: sharded, plus any flat stragglers a
        failed/read-only migration left behind."""
        paths = [
            p
            for shard in self.root.iterdir()
            if shard.is_dir() and _is_shard_dir(shard)
            for p in shard.glob(f"*{_SUFFIX}")
        ]
        paths.extend(
            p
            for p in self.root.glob(f"*{_SUFFIX}")
            if p.name not in (_STATS_FILE, _POISON_FILE)
        )
        return sorted(paths)

    def get(
        self, key: str, verify_on_load: bool = True
    ) -> Optional[CompiledProgram]:
        path = self.path_for(key)
        if not path.exists():
            # Read-only legacy stores cannot migrate; still serve flat.
            flat = self.root / f"{key}{_SUFFIX}"
            if flat.exists():
                path = flat
        try:
            data = json.loads(path.read_text())
            program = CompiledProgram.from_dict(data["program"])
        except FileNotFoundError:
            self.disk_misses += 1
            return None
        except Exception:
            # Corrupt, truncated or version-skewed artifact: quarantine it
            # for diagnosis and report a miss so the caller recompiles.
            self._quarantine(path)
            self.disk_misses += 1
            return None
        if verify_on_load and program.verification is None:
            # Legacy (pre-verifier) or --no-verify artifact: prove it safe
            # before serving the hit.  A pass self-heals the artifact (the
            # report is persisted so the work happens once per store); a
            # failure quarantines it exactly like corruption — the caller
            # recompiles through the admission gate.
            from repro.verify import admit, verify_program

            try:
                program.verification = admit(verify_program(program))
            except Exception:
                self._quarantine(path)
                self.verify_rejected += 1
                self.bump_persistent_stats({"verify_rejected": 1})
                self.disk_misses += 1
                return None
            self.verified_on_load += 1
            self.bump_persistent_stats({"verified_on_load": 1})
            try:
                # Self-heal persists the report so the proof runs once per
                # store — skippable on a read-only store (the verified
                # program is still served; the next process re-proves).
                self.put(key, program)
            except OSError:
                pass
        self.disk_hits += 1
        return program

    def put(self, key: str, program: CompiledProgram) -> Path:
        payload = {
            "key": key,
            "created": time.time(),
            "codegen_seconds": program.codegen_seconds,
            "variant": program.options.variant_name(),
            # Machine-readable arch tag (registry key) so cache stats can
            # attribute artifacts per-arch without decoding the program.
            "arch": program.arch.name.lower(),
            "program": program.to_dict(),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, json.dumps(payload))
        self.writes += 1
        if self.injector is not None:
            # The fault plane may truncate the artifact we just landed —
            # the next get() must treat it as a miss and quarantine it.
            self.injector.corrupt_artifact(path)
        return path

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt artifact aside (collision-safe) for diagnosis."""
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / path.name
            serial = 0
            while target.exists():
                serial += 1
                target = qdir / f"{path.stem}.{serial}{path.suffix}"
            os.replace(path, target)
        except OSError:
            # Quarantine is best-effort; never let it turn a cache miss
            # into a hard failure.  Fall back to deleting the artifact so
            # the corrupt bytes cannot be served again (also best-effort:
            # on a read-only store even the unlink is denied).
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self.quarantined += 1
        self.bump_persistent_stats({"quarantined": 1})

    def keys(self) -> List[str]:
        return sorted(p.stem for p in self._artifact_paths())

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._artifact_paths())

    def shard_counts(self) -> Dict[str, int]:
        """Artifacts per (non-empty) shard directory."""
        counts: Dict[str, int] = {}
        for path in self._artifact_paths():
            shard = path.parent.name if path.parent != self.root else "(flat)"
            counts[shard] = counts.get(shard, 0) + 1
        return dict(sorted(counts.items()))

    def arch_counts(self) -> Dict[str, int]:
        """Artifacts per architecture (top-level ``arch`` tag).

        Artifacts written before the tag existed were all compiled for
        the paper's single SW26010Pro target, so an untagged artifact
        counts as ``sw26010pro`` rather than unknown."""
        counts: Dict[str, int] = {}
        for path in self._artifact_paths():
            try:
                data = json.loads(path.read_text())
                name = str(data.get("arch") or "sw26010pro").lower()
            except (OSError, ValueError):
                name = "(unreadable)"
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> int:
        """Remove every artifact and the persistent counters."""
        removed = 0
        for p in self._artifact_paths():
            p.unlink(missing_ok=True)
            removed += 1
        (self.root / _STATS_FILE).unlink(missing_ok=True)
        for shard in self.root.iterdir():
            if shard.is_dir() and _is_shard_dir(shard):
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (racing writer) — keep it
        return removed

    # -- persistent counters ------------------------------------------------

    def load_persistent_stats(self) -> Dict[str, float]:
        try:
            data = json.loads((self.root / _STATS_FILE).read_text())
            return data if isinstance(data, dict) else {}
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    def bump_persistent_stats(self, deltas: Dict[str, float]) -> Dict[str, float]:
        """Merge counter deltas into ``stats.json`` (load-modify-rename)."""
        totals = self.load_persistent_stats()
        for name, delta in deltas.items():
            if delta:
                totals[name] = totals.get(name, 0) + delta
        totals["updated"] = time.time()
        try:
            self._atomic_write(
                self.root / _STATS_FILE, json.dumps(totals, sort_keys=True)
            )
        except OSError:
            pass  # read-only store: counters stay session-local
        return totals

    # -- helpers -----------------------------------------------------------

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def poison_keys(self) -> List[str]:
        """Cache keys the serving daemon's circuit breaker quarantined.

        The breaker (:mod:`repro.serve.isolation`) persists its state to
        ``<cache-dir>/poison-keys.json``; reading it here lets ``swgemm
        cache stats`` report poisoned kernels without a live daemon.
        Best-effort: a missing or damaged file reads as empty."""
        try:
            data = json.loads((self.root / _POISON_FILE).read_text())
        except (OSError, json.JSONDecodeError):
            return []
        keys = data.get("quarantined", []) if isinstance(data, dict) else []
        return sorted(str(k) for k in keys) if isinstance(keys, list) else []

    def stats(self) -> Dict[str, object]:
        qdir = self.quarantine_dir
        quarantine_files = (
            len(list(qdir.glob(f"*{_SUFFIX}"))) if qdir.is_dir() else 0
        )
        shards = self.shard_counts()
        return {
            "dir": str(self.root),
            "artifacts": len(self.keys()),
            "bytes": self.total_bytes(),
            "shards": len(shards),
            "per_shard": shards,
            "archs": self.arch_counts(),
            "migrated": self.migrated,
            "hits": self.disk_hits,
            "misses": self.disk_misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "quarantine_files": quarantine_files,
            "verified_on_load": self.verified_on_load,
            "verify_rejected": self.verify_rejected,
            "poison_keys": self.poison_keys(),
        }
