"""On-disk artifact store (the warm tier).

One JSON file per content-addressed key under a cache directory, written
atomically (temp file + rename) so concurrent writers — several CLI
invocations, a warmup fleet — can share the directory without torn
artifacts.  Corrupt or version-skewed artifacts are treated as misses
and removed.

The store also keeps cumulative service counters in ``stats.json`` so a
later ``swgemm cache stats`` invocation can report the hits a previous
``swgemm perf`` run produced — per-process counters alone would vanish
with the process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.runtime.program import CompiledProgram

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "SWGEMM_CACHE_DIR"

_STATS_FILE = "stats.json"
_SUFFIX = ".json"


def default_cache_dir() -> Path:
    """``$SWGEMM_CACHE_DIR`` or ``~/.cache/swgemm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "swgemm"


class ArtifactStore:
    """Directory of serialized :class:`CompiledProgram` artifacts."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0
        self.writes = 0

    # -- artifact files ----------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    def get(self, key: str) -> Optional[CompiledProgram]:
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            program = CompiledProgram.from_dict(data["program"])
        except FileNotFoundError:
            self.disk_misses += 1
            return None
        except Exception:
            # Corrupt, truncated or version-skewed artifact: drop it and
            # let the caller recompile.
            path.unlink(missing_ok=True)
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        return program

    def put(self, key: str, program: CompiledProgram) -> Path:
        payload = {
            "key": key,
            "created": time.time(),
            "codegen_seconds": program.codegen_seconds,
            "variant": program.options.variant_name(),
            "program": program.to_dict(),
        }
        path = self.path_for(key)
        self._atomic_write(path, json.dumps(payload))
        self.writes += 1
        return path

    def keys(self) -> List[str]:
        return sorted(
            p.stem for p in self.root.glob(f"*{_SUFFIX}") if p.name != _STATS_FILE
        )

    def total_bytes(self) -> int:
        return sum(
            p.stat().st_size
            for p in self.root.glob(f"*{_SUFFIX}")
            if p.name != _STATS_FILE
        )

    def clear(self) -> int:
        """Remove every artifact and the persistent counters."""
        removed = 0
        for p in self.root.glob(f"*{_SUFFIX}"):
            p.unlink(missing_ok=True)
            if p.name != _STATS_FILE:
                removed += 1
        return removed

    # -- persistent counters ------------------------------------------------

    def load_persistent_stats(self) -> Dict[str, float]:
        try:
            data = json.loads((self.root / _STATS_FILE).read_text())
            return data if isinstance(data, dict) else {}
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    def bump_persistent_stats(self, deltas: Dict[str, float]) -> Dict[str, float]:
        """Merge counter deltas into ``stats.json`` (load-modify-rename)."""
        totals = self.load_persistent_stats()
        for name, delta in deltas.items():
            if delta:
                totals[name] = totals.get(name, 0) + delta
        totals["updated"] = time.time()
        self._atomic_write(self.root / _STATS_FILE, json.dumps(totals, sort_keys=True))
        return totals

    # -- helpers -----------------------------------------------------------

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> Dict[str, object]:
        return {
            "dir": str(self.root),
            "artifacts": len(self.keys()),
            "bytes": self.total_bytes(),
            "hits": self.disk_hits,
            "misses": self.disk_misses,
            "writes": self.writes,
        }
