"""swgemm — Automatically Generating High-performance Matrix
Multiplication Kernels on the Latest Sunway Processor (ICPP '22),
reproduced as a Python library.

The package implements the paper's polyhedral GEMM compiler end to end —
C frontend, schedule trees, compute decomposition, automatic DMA/RMA,
two-level memory latency hiding, athread code generation — together with
every substrate the evaluation depends on: a functional + timed simulator
of one SW26010Pro core group, the vendor micro-kernel contract, an xMath
baseline model, and a model-guided autotuner over the tile/pipeline
configuration space.  See DESIGN.md for the inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quick start — the stable facade is :mod:`repro.api`::

    import numpy as np
    from repro import api, GemmSpec

    program = api.compile(GemmSpec(), shape=(1024, 1024, 1024))
    a = np.random.rand(1024, 1024); b = np.random.rand(1024, 1024)
    result = api.run(program, a, b, beta=0.0)
    print(result.gflops, "Gflops (simulated)")

    record = api.tune(GemmSpec(), shape=(576, 1024, 512))
    print(record.candidate.name(), f"{100 * record.improvement:.1f}% faster")

The pre-facade entry points (``GemmCompiler``, ``run_gemm``,
``KernelService``) still work but emit ``DeprecationWarning`` with their
migration hint — see :mod:`repro.compat`.
"""

from repro import api
from repro.api import Client, GemmResult, connect
from repro.codegen.backend import backend_names, get_backend, resolve_kernel
from repro.compat import GemmCompiler, run_gemm
from repro.core import CompilerOptions, GemmSpec
from repro.core.options import SchedulePolicy, TileConfig
from repro.faults import FaultInjector, FaultPolicy, RetryPolicy, tile_checksum
from repro.frontend import compile_c, extract_spec, parse_c
from repro.runtime import CompiledProgram, ExecutionReport, Executor
from repro.runtime.simulator import PerformanceSimulator
from repro.service import (
    CompileService,
    ServiceConfig,
    cache_key,
    get_default_service,
    set_default_service,
)
from repro.sunway import (
    SW26010,
    SW26010PRO,
    SW26010PRO_HBM,
    SW26010PRO_LITE,
    TOY_ARCH,
    ArchSpec,
    Cluster,
    arch_names,
    get_arch,
    register_arch,
)
from repro.tune import TuneOptions, Tuner, TuningRecord, TuningRecordStore

__version__ = "1.3.0"

__all__ = [
    # the stable facade
    "api",
    "GemmResult",
    # serving daemon client
    "Client",
    "connect",
    # problem + options
    "GemmSpec",
    "CompilerOptions",
    "TileConfig",
    "SchedulePolicy",
    # compilation service
    "CompileService",
    "ServiceConfig",
    "cache_key",
    "get_default_service",
    "set_default_service",
    # autotuner
    "Tuner",
    "TuneOptions",
    "TuningRecord",
    "TuningRecordStore",
    # frontend + runtime
    "compile_c",
    "extract_spec",
    "parse_c",
    "CompiledProgram",
    "Executor",
    "ExecutionReport",
    "PerformanceSimulator",
    # fault plane
    "FaultPolicy",
    "RetryPolicy",
    "FaultInjector",
    "tile_checksum",
    # architectures (the registry is how new targets become reachable)
    "ArchSpec",
    "Cluster",
    "SW26010PRO",
    "SW26010",
    "SW26010PRO_HBM",
    "SW26010PRO_LITE",
    "TOY_ARCH",
    "get_arch",
    "arch_names",
    "register_arch",
    # kernel backends
    "get_backend",
    "backend_names",
    "resolve_kernel",
    # deprecated shims (warn on use)
    "GemmCompiler",
    "run_gemm",
    "__version__",
]
