"""swgemm — Automatically Generating High-performance Matrix
Multiplication Kernels on the Latest Sunway Processor (ICPP '22),
reproduced as a Python library.

The package implements the paper's polyhedral GEMM compiler end to end —
C frontend, schedule trees, compute decomposition, automatic DMA/RMA,
two-level memory latency hiding, athread code generation — together with
every substrate the evaluation depends on: a functional + timed simulator
of one SW26010Pro core group, the vendor micro-kernel contract, and an
xMath baseline model.  See DESIGN.md for the inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quick start::

    from repro import compile_c, run_gemm
    import numpy as np

    program = compile_c(open("gemm.c").read())
    A = np.random.rand(1024, 1024); B = np.random.rand(1024, 1024)
    C, report = run_gemm(program, A, B, np.zeros((1024, 1024)), beta=0.0)
    print(report.gflops, "Gflops (simulated)")
"""

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.faults import FaultInjector, FaultPolicy, RetryPolicy, tile_checksum
from repro.frontend import compile_c, extract_spec, parse_c
from repro.runtime import CompiledProgram, ExecutionReport, Executor, run_gemm
from repro.runtime.simulator import PerformanceSimulator
from repro.service import (
    CompileService,
    ServiceConfig,
    cache_key,
    get_default_service,
    set_default_service,
)
from repro.sunway import SW26010, SW26010PRO, TOY_ARCH, ArchSpec, Cluster

__version__ = "1.1.0"

__all__ = [
    "CompileService",
    "ServiceConfig",
    "cache_key",
    "get_default_service",
    "set_default_service",
    "GemmCompiler",
    "GemmSpec",
    "CompilerOptions",
    "compile_c",
    "extract_spec",
    "parse_c",
    "CompiledProgram",
    "Executor",
    "ExecutionReport",
    "run_gemm",
    "PerformanceSimulator",
    "FaultPolicy",
    "RetryPolicy",
    "FaultInjector",
    "tile_checksum",
    "ArchSpec",
    "Cluster",
    "SW26010PRO",
    "SW26010",
    "TOY_ARCH",
    "__version__",
]
