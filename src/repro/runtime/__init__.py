"""Runtime: executing compiled programs on the simulated core group.

* :mod:`repro.runtime.program` — the :class:`CompiledProgram` container
  (schedule tree + CPE AST + SPM buffer plan + metadata);
* :mod:`repro.runtime.executor` — the coroutine-based AST interpreter
  that runs 64 concurrent CPE programs against the simulated cluster,
  validating numerics *and* communication discipline;
* :mod:`repro.runtime.simulator` — the timed evaluation used by the
  benchmark harness (chunk-level discrete simulation, extrapolated over
  the homogeneous chunk grid);
* :mod:`repro.runtime.analytical` — a closed-form performance model that
  cross-checks the simulator.
"""

from repro.runtime.program import CompiledProgram
from repro.runtime.executor import ExecutionReport, Executor, run_gemm

__all__ = ["CompiledProgram", "Executor", "ExecutionReport", "run_gemm"]
