"""Timed performance evaluation.

The paper reports Gflops for shapes up to 15360³; interpreting every
statement of such a run would take hours in Python, but the generated
schedule makes a *chunk decomposition* exact: the mesh processes
``(M/512)·(N/512)`` identical 512×512×K blocks strictly sequentially (the
C tile's get/put is never overlapped across chunks — §6.1 notes C's
latency cannot be hidden).  The simulator therefore:

1. runs the real coroutine interpreter (timing-only, no data movement)
   on **one chunk** — 512×512×K with the full pipeline, barriers, channel
   contention and edge effects;
2. multiplies by the number of chunks and adds the one-off spawn cost.

Chunk times are cached per ``(arch, options, K, fusion, batch)`` so shape
sweeps that share a K value (most of Fig. 13/14) cost one simulation.

Batched GEMM composes the same way: our compiler starts the mesh once and
iterates the batch inside the CPE code (§8.3), so

    total = spawn + batch · chunks(M,N) · chunk_time(K).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.runtime.executor import Executor
from repro.runtime.program import CompiledProgram
from repro.sunway.arch import SW26010PRO, ArchSpec
from repro.sunway.mesh import Cluster


@dataclass(frozen=True)
class PerfResult:
    """One simulated measurement."""

    M: int
    N: int
    K: int
    batch: int
    variant: str
    seconds: float
    gflops: float
    peak_fraction: float
    n_chunks: int
    chunk_seconds: float
    #: pipeline bubble occupancy of one chunk: the fraction of total
    #: CPE-time NOT spent in the micro kernel (1 − Σ compute_seconds /
    #: (n_cpes · chunk)).  Lower is better; the schedule rewrite stack
    #: (``--schedule=optimize``) exists to shrink it.
    bubble_fraction: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        shape = f"{self.M}x{self.N}x{self.K}"
        if self.batch > 1:
            shape = f"b{self.batch}:{shape}"
        return f"{shape} [{self.variant}] {self.gflops:.2f} Gflops " \
               f"({100 * self.peak_fraction:.2f}% peak)"


class PerformanceSimulator:
    """Chunk-extrapolating timed simulation."""

    def __init__(
        self,
        arch: ArchSpec = SW26010PRO,
        service: Optional[object] = None,
        guarded: bool = False,
    ) -> None:
        from repro.service import get_default_service

        self.arch = arch
        #: Programs come from the compilation service (content-addressed
        #: two-tier cache + single-flight dedup) rather than an ad-hoc
        #: per-simulator dict, so every simulator in the process — and,
        #: with a disk-backed service, every process — shares compiles.
        self.service = service if service is not None else get_default_service()
        #: guarded mode: every chunk simulation runs under a
        #: CertificateGuard built from the program's admission report
        self.guarded = guarded
        self._chunk_cache: Dict[Tuple, Tuple[float, float]] = {}

    # -- compilation cache ---------------------------------------------------

    def program_for(
        self, options: CompilerOptions, spec: Optional[GemmSpec] = None
    ) -> CompiledProgram:
        spec = spec or self._default_spec(options)
        return self.service.get_program(spec, self.arch, options)

    def _default_spec(self, options: CompilerOptions) -> GemmSpec:
        kwargs: Dict[str, object] = {}
        if options.batch:
            kwargs["batch_param"] = "BS"
        if options.fusion == "prologue":
            kwargs["prologue_func"] = options.prologue_func
        elif options.fusion == "epilogue":
            kwargs["epilogue_func"] = options.epilogue_func
        return GemmSpec(**kwargs)

    # -- chunk measurement -----------------------------------------------------

    def chunk_seconds(
        self, K: int, options: CompilerOptions, spec: Optional[GemmSpec] = None
    ) -> float:
        """Timed simulation of one 512×512×K mesh pass, spawn excluded."""
        return self.chunk_stats(K, options, spec)[0]

    def chunk_stats(
        self, K: int, options: CompilerOptions, spec: Optional[GemmSpec] = None
    ) -> Tuple[float, float]:
        """``(chunk seconds, bubble fraction)`` for one mesh pass.

        The bubble fraction is the share of total CPE-time the mesh
        spends *outside* the micro kernel — waiting on DMA/RMA, in
        barriers, or in scale/fixup code.  It is what the schedule
        rewrites attack, so it rides along with every timing."""
        spec = spec or self._default_spec(options)
        key = (options, spec, K)
        if key in self._chunk_cache:
            return self._chunk_cache[key]
        program = self.program_for(options, spec)
        plan = program.plan
        if K % plan.k_step:
            raise ConfigurationError(
                f"K={K} is not a multiple of the k step {plan.k_step}"
            )
        cluster = Cluster(
            self.arch,
            fault_policy=options.fault_policy,
            retry_policy=options.retry_policy,
        )
        cm, cn = plan.chunk_m, plan.chunk_n
        batched = spec.is_batched
        a_shape = (1, cm, K) if batched else (cm, K)
        b_shape = (1, K, cn) if batched else (K, cn)
        c_shape = (1, cm, cn) if batched else (cm, cn)
        cluster.memory.alloc(spec.a_name, a_shape)
        cluster.memory.alloc(spec.b_name, b_shape)
        cluster.memory.alloc(spec.c_name, c_shape)
        guard = None
        if self.guarded:
            from repro.verify import CertificateGuard

            guard = CertificateGuard.from_program(program)
        executor = Executor(program, cluster, move_data=False, guard=guard)
        params = {spec.m_param: cm, spec.n_param: cn, spec.k_param: K}
        if batched:
            params[spec.batch_param] = 1
        report = executor.run(params)
        chunk = report.elapsed_seconds - self.arch.spawn_us * 1e-6
        n_cpes = plan.mesh * plan.mesh
        compute = report.stats.get("compute_seconds", 0.0)
        bubble = (
            max(0.0, 1.0 - compute / (n_cpes * chunk)) if chunk > 0 else 0.0
        )
        self._chunk_cache[key] = (chunk, bubble)
        return chunk, bubble

    # -- the headline API ----------------------------------------------------------

    def simulate(
        self,
        M: int,
        N: int,
        K: int,
        options: Optional[CompilerOptions] = None,
        batch: int = 1,
        spec: Optional[GemmSpec] = None,
    ) -> PerfResult:
        """Simulated Gflops for one shape under one compiler variant.

        ``spec`` overrides the options-derived default spec — the
        autotuner measures candidate configs against the *caller's* spec
        (fused or transposed layouts change the pipeline) rather than a
        plain ``C = A×B``.
        """
        options = options or CompilerOptions.full()
        if batch > 1 and not options.batch:
            options = options.with_(batch=True)
        spec = spec or self._default_spec(options)
        program = self.program_for(options, spec)
        plan = program.plan
        for value, step, name in (
            (M, plan.chunk_m, "M"),
            (N, plan.chunk_n, "N"),
            (K, plan.k_step, "K"),
        ):
            if value % step:
                raise ConfigurationError(
                    f"{name}={value} is not a multiple of {step}; the paper "
                    "zero-pads such shapes (§8.1) — pad before simulating"
                )
        chunk, bubble = self.chunk_stats(K, options, spec)
        n_chunks = (M // plan.chunk_m) * (N // plan.chunk_n)
        seconds = self.arch.spawn_us * 1e-6 + batch * n_chunks * chunk
        flops = 2.0 * M * N * K * batch
        gflops = flops / seconds / 1e9
        return PerfResult(
            M=M,
            N=N,
            K=K,
            batch=batch,
            variant=options.variant_name()
            + (f"+{options.fusion}" if options.fusion != "none" else ""),
            seconds=seconds,
            gflops=gflops,
            peak_fraction=gflops / self.arch.peak_gflops,
            n_chunks=n_chunks,
            chunk_seconds=chunk,
            bubble_fraction=bubble,
        )

    def breakdown(
        self,
        M: int,
        N: int,
        K: int,
        fault_policy: Optional[object] = None,
        retry_policy: Optional[object] = None,
    ) -> Dict[str, PerfResult]:
        """The four §8.1 variants for one shape (Fig. 13's bar groups).

        ``fault_policy`` / ``retry_policy`` thread the fault-injection
        plane through every variant (the CLI's ``--inject-faults``)."""
        variants = (
            ("dma-only", CompilerOptions.baseline()),
            ("+asm", CompilerOptions.with_asm()),
            ("+rma", CompilerOptions.with_rma()),
            ("+hiding", CompilerOptions.full()),
        )
        if fault_policy is not None or retry_policy is not None:
            variants = tuple(
                (name, opts.with_(fault_policy=fault_policy,
                                  retry_policy=retry_policy))
                for name, opts in variants
            )
        return {
            name: self.simulate(M, N, K, options)
            for name, options in variants
        }
