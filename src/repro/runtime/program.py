"""The compiled program container.

Holds everything the back ends need: the final schedule tree (kept for
inspection and golden tests — its dump is the reproduction of Figs. 9/11),
the CPE AST with its SPM buffer plan, the problem/option/architecture
metadata, and the measured code-generation time (the paper's §8.5
engineering-cost claim is about exactly this number)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import Decomposition
from repro.core.diagnostics import PassStat
from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.core.tile_model import TilePlan
from repro.poly.astnodes import BufferDecl, CpeProgram, ReplyDecl
from repro.poly.schedule_tree import DomainNode
from repro.sunway.arch import ArchSpec


@dataclass
class CompiledProgram:
    """Output of :class:`repro.core.pipeline.GemmCompiler.compile`."""

    spec: GemmSpec
    options: CompilerOptions
    arch: ArchSpec
    plan: TilePlan
    decomposition: Decomposition
    cpe_program: CpeProgram
    codegen_seconds: float = 0.0
    #: Compact per-pass breakdown (name, paper section, seconds,
    #: diagnostics).  ``codegen_seconds == sum(s.seconds for s in
    #: pass_stats)`` by construction; empty for artifacts produced before
    #: the instrumented pipeline existed.
    pass_stats: Tuple[PassStat, ...] = ()
    #: The admission verifier's report + certificate
    #: (:class:`repro.verify.VerificationReport`).  ``None`` only for
    #: ``--no-verify`` compiles and pre-verifier artifacts — the artifact
    #: store re-verifies those on load before serving them.
    verification: Optional[object] = None

    @property
    def tree(self) -> DomainNode:
        return self.decomposition.root

    def tree_dump(self) -> str:
        return self.tree.dump()

    def spm_bytes(self) -> int:
        return self.cpe_program.spm_bytes()

    # -- shape utilities --------------------------------------------------

    def padded_shape(self, M: int, N: int, K: int) -> Tuple[int, int, int]:
        """The zero-padded shape the mesh actually executes (§8.1: M and N
        must be multiples of 512 and K of 256 on the default target)."""
        plan = self.plan

        def up(value: int, multiple: int) -> int:
            return -(-value // multiple) * multiple

        return (
            up(M, plan.chunk_m),
            up(N, plan.chunk_n),
            up(K, plan.k_step),
        )

    def requires_padding(self, M: int, N: int, K: int) -> bool:
        return self.padded_shape(M, N, K) != (M, N, K)

    def describe(self) -> Dict[str, object]:
        return {
            "variant": self.options.variant_name(),
            "fusion": self.options.fusion,
            "batched": self.spec.is_batched,
            "tile_plan": self.plan.describe(),
            "arch": self.arch.describe(),
            "spm_bytes": self.spm_bytes(),
            "codegen_seconds": round(self.codegen_seconds, 6),
            "passes": [s.name for s in self.pass_stats],
        }

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe artifact for the compilation service's disk cache."""
        from repro.runtime import serde

        return {
            "serde_version": serde.SERDE_VERSION,
            "spec": serde.encode(self.spec),
            "options": serde.encode(self.options),
            "arch": serde.encode(self.arch),
            "plan": serde.encode(self.plan),
            "decomposition": serde.encode(self.decomposition),
            "cpe_program": serde.encode(self.cpe_program),
            "codegen_seconds": self.codegen_seconds,
            "pass_stats": serde.encode(list(self.pass_stats)),
            "verification": serde.encode(self.verification),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompiledProgram":
        from repro.runtime import serde

        version = data.get("serde_version")
        if version != serde.SERDE_VERSION:
            raise serde.SerializationError(
                f"artifact has serde version {version!r}, "
                f"expected {serde.SERDE_VERSION}"
            )
        # Pre-refactor artifacts (before arch became a degree of freedom)
        # may carry no arch tag at all; they were all compiled for the
        # paper's single SW26010Pro target, so default rather than crash.
        if data.get("arch") is not None:
            arch = serde.decode(data["arch"])
        else:
            from repro.sunway.arch import SW26010PRO

            arch = SW26010PRO
        decomposition = serde.decode(data["decomposition"])
        # Artifacts written before Decomposition.arch became a real field
        # (and before the field entered the serde payload) reload with
        # arch=None; restore the invariant either way.
        decomposition.arch = arch
        # ``pass_stats`` is likewise absent from pre-pipeline artifacts:
        # they must still load (with an empty breakdown), not quarantine.
        stats = data.get("pass_stats")
        return cls(
            spec=serde.decode(data["spec"]),
            options=serde.decode(data["options"]),
            arch=arch,
            plan=serde.decode(data["plan"]),
            decomposition=decomposition,
            cpe_program=serde.decode(data["cpe_program"]),
            codegen_seconds=float(data.get("codegen_seconds", 0.0)),
            pass_stats=tuple(serde.decode(stats)) if stats is not None else (),
            # Absent from pre-verifier artifacts; the store's
            # verify-on-load path fills it in (or quarantines).
            verification=serde.decode(data.get("verification")),
        )

    # -- source rendering ----------------------------------------------------

    def cpe_source(self) -> str:
        from repro.codegen.printer import print_cpe_program

        return print_cpe_program(self)

    def mpe_source(self) -> str:
        from repro.codegen.printer import print_mpe_program

        return print_mpe_program(self)
