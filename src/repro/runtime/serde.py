"""JSON-safe serialization of compiled programs.

The compilation service (:mod:`repro.service`) persists
:class:`~repro.runtime.program.CompiledProgram` artifacts to disk so a
kernel compiled once is never compiled again — not even by a different
process.  Artifacts must therefore survive an exact round trip through
plain JSON: the schedule tree (whose :meth:`dump` is golden-tested), the
CPE AST the executor interprets, and every constituent dataclass.

The encoding is a small tagged format:

* JSON-native scalars pass through unchanged;
* ``list`` → list of encoded items;
* ``tuple`` → ``{"$": "tuple", "v": [...]}`` (tuples matter: frozen
  dataclasses hash their tuple fields);
* ``dict`` → ``{"$": "dict", "v": [[key, value], ...]}`` preserving
  insertion order and supporting non-string keys (``AffExpr.divs`` keys
  are :class:`FloorDiv` objects);
* registered classes → ``{"$": tag, "v": {field: ...}}``.

Dataclasses register automatically from their fields; the handful of
slotted classes (:class:`AffExpr`, :class:`IntegerSet`, schedule-tree
nodes...) register explicit encode/decode pairs below.  Unknown types
fail loudly — silent ``repr`` fallbacks would poison the cache.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import SwGemmError


class SerializationError(SwGemmError):
    """Raised when an object cannot be encoded or decoded."""


#: Bump whenever the encoding (or any serialized class) changes shape;
#: the artifact store treats artifacts of other versions as misses.
SERDE_VERSION = 1

_ENCODERS: Dict[type, Tuple[str, Callable[[Any], dict]]] = {}
_DECODERS: Dict[str, Callable[[dict], Any]] = {}


def register(cls: type, tag: str, encode_fn, decode_fn) -> None:
    if tag in _DECODERS:
        raise SerializationError(f"duplicate serde tag {tag!r}")
    _ENCODERS[cls] = (tag, encode_fn)
    _DECODERS[tag] = decode_fn


def register_dataclass(cls: type, tag: str = "") -> None:
    """Field-wise registration; the constructor must accept every field."""
    tag = tag or cls.__name__
    names = [f.name for f in dataclass_fields(cls)]

    def enc(obj) -> dict:
        return {n: encode(getattr(obj, n)) for n in names}

    def dec(payload: dict):
        return cls(**{n: decode(v) for n, v in payload.items()})

    register(cls, tag, enc, dec)


def encode(obj: Any) -> Any:
    """Encode an object into JSON-safe data."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [encode(v) for v in obj]
    if isinstance(obj, tuple):
        return {"$": "tuple", "v": [encode(v) for v in obj]}
    if isinstance(obj, dict):
        return {"$": "dict", "v": [[encode(k), encode(v)] for k, v in obj.items()]}
    entry = _ENCODERS.get(type(obj))
    if entry is None:
        raise SerializationError(
            f"no serde registration for {type(obj).__module__}."
            f"{type(obj).__qualname__}"
        )
    tag, enc = entry
    return {"$": tag, "v": enc(obj)}


def decode(data: Any) -> Any:
    """Inverse of :func:`encode`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode(v) for v in data]
    if isinstance(data, dict):
        tag = data.get("$")
        if tag == "tuple":
            return tuple(decode(v) for v in data["v"])
        if tag == "dict":
            return {decode(k): decode(v) for k, v in data["v"]}
        dec = _DECODERS.get(tag)
        if dec is None:
            raise SerializationError(f"unknown serde tag {tag!r}")
        return dec(data["v"])
    raise SerializationError(f"cannot decode {data!r}")


# ---------------------------------------------------------------------------
# Registrations
# ---------------------------------------------------------------------------


def _register_all() -> None:
    from repro.core.decomposition import Decomposition
    from repro.core.diagnostics import PassDiagnostic, PassStat
    from repro.core.dma import DmaSpec
    from repro.core.options import CompilerOptions, SchedulePolicy, TileConfig
    from repro.core.rma import RmaSpec
    from repro.core.spec import GemmSpec
    from repro.core.tile_model import BufferSpec, TilePlan
    from repro.poly import astnodes as ast
    from repro.poly.affine import AffExpr, FloorDiv
    from repro.poly.dependences import DependenceSummary, DistanceFamily
    from repro.poly.imap import AffineMap
    from repro.poly.iset import Constraint, IntegerSet
    from repro.poly.schedule_tree import (
        BandMember,
        BandNode,
        ContextNode,
        DomainNode,
        ExtensionNode,
        ExtensionStmt,
        FilterNode,
        MarkNode,
        SequenceNode,
    )
    from repro.faults import FaultPolicy, RetryPolicy
    from repro.poly.space import Space
    from repro.sunway.arch import ArchSpec, MicroKernelShape

    # -- quasi-affine layer --------------------------------------------
    register(
        AffExpr,
        "Aff",
        lambda e: {
            "coeffs": encode(e.coeffs),
            "divs": [[encode(t), c] for t, c in e.divs.items()],
            "const": e.const,
        },
        lambda p: AffExpr(
            decode(p["coeffs"]),
            {decode(t): c for t, c in p["divs"]},
            p["const"],
        ),
    )
    register(
        FloorDiv,
        "FloorDiv",
        lambda t: {"arg": encode(t.arg), "divisor": t.divisor},
        lambda p: FloorDiv(decode(p["arg"]), p["divisor"]),
    )
    register_dataclass(Space)
    register_dataclass(Constraint)
    register(
        IntegerSet,
        "IntegerSet",
        lambda s: {"space": encode(s.space), "constraints": encode(list(s.constraints))},
        lambda p: IntegerSet(decode(p["space"]), decode(p["constraints"])),
    )
    register(
        AffineMap,
        "AffineMap",
        lambda m: {
            "domain_space": encode(m.domain_space),
            "exprs": encode(list(m.exprs)),
            "range_space": encode(m.range_space),
        },
        lambda p: AffineMap(
            decode(p["domain_space"]), decode(p["exprs"]), decode(p["range_space"])
        ),
    )
    register_dataclass(DistanceFamily)
    register_dataclass(DependenceSummary)

    # -- schedule trees -------------------------------------------------
    register_dataclass(BandMember)
    register_dataclass(ExtensionStmt)

    def _children(node) -> list:
        return [encode(c) for c in node.children]

    register(
        DomainNode,
        "DomainNode",
        lambda n: {"statements": encode(n.statements), "children": _children(n)},
        lambda p: DomainNode(decode(p["statements"]), decode(p["children"])),
    )
    register(
        BandNode,
        "BandNode",
        lambda n: {
            "members": encode(n.members),
            "permutable": n.permutable,
            "children": _children(n),
        },
        lambda p: BandNode(decode(p["members"]), p["permutable"], decode(p["children"])),
    )
    register(
        SequenceNode,
        "SequenceNode",
        lambda n: {"children": _children(n)},
        lambda p: SequenceNode(decode(p["children"])),
    )
    register(
        FilterNode,
        "FilterNode",
        lambda n: {
            "statements": encode(list(n.statements)),
            "constraints": encode(list(n.constraints)),
            "label": n.label,
            "children": _children(n),
        },
        lambda p: FilterNode(
            decode(p["statements"]), decode(p["children"]),
            decode(p["constraints"]), p["label"],
        ),
    )
    register(
        ExtensionNode,
        "ExtensionNode",
        lambda n: {"stmts": encode(n.stmts), "children": _children(n)},
        lambda p: ExtensionNode(decode(p["stmts"]), decode(p["children"])),
    )
    register(
        MarkNode,
        "MarkNode",
        lambda n: {
            "mark": n.mark,
            "payload": encode(n.payload),
            "children": _children(n),
        },
        lambda p: MarkNode(p["mark"], decode(p["children"]), decode(p["payload"])),
    )
    register(
        ContextNode,
        "ContextNode",
        lambda n: {"constraints": encode(list(n.constraints)), "children": _children(n)},
        lambda p: ContextNode(decode(p["constraints"]), decode(p["children"])),
    )

    # -- loop AST --------------------------------------------------------
    for cls in (
        ast.IntLit,
        ast.DoubleLit,
        ast.VarRef,
        ast.AffRef,
        ast.BinExpr,
        ast.ArrayRef,
        ast.AddrOf,
        ast.CallExpr,
        ast.Block,
        ast.ForLoop,
        ast.IfStmt,
        ast.AssignStmt,
        ast.CommStmt,
        ast.KernelCall,
        ast.BlockOpStmt,
        ast.CommentStmt,
        ast.NaiveComputeStmt,
        ast.BufferDecl,
        ast.ReplyDecl,
        ast.CpeProgram,
    ):
        register_dataclass(cls)

    # -- compiler dataclasses --------------------------------------------
    for cls in (
        GemmSpec,
        TileConfig,
        SchedulePolicy,
        CompilerOptions,
        FaultPolicy,
        RetryPolicy,
        BufferSpec,
        TilePlan,
        DmaSpec,
        RmaSpec,
        MicroKernelShape,
        ArchSpec,
        PassDiagnostic,
        PassStat,
    ):
        register_dataclass(cls)

    # -- verification reports (PR 4) -------------------------------------
    # report.py imports nothing from the compiler or runtime layers, so
    # registering it here cannot cycle.
    from repro.verify.report import CheckResult, VerificationReport

    register_dataclass(CheckResult)
    register_dataclass(VerificationReport)

    # The decomposition's ``bands`` dict aliases nodes *inside* the tree;
    # encoding them by value would sever the aliasing, so they are stored
    # as pre-order indexes into the root's walk and re-resolved on decode.
    def enc_dec(dec_obj) -> dict:
        order = {id(n): i for i, n in enumerate(dec_obj.root.walk())}
        bands = {}
        for name, node in dec_obj.bands.items():
            if id(node) not in order:
                raise SerializationError(
                    f"band {name!r} is not part of the schedule tree"
                )
            bands[name] = order[id(node)]
        return {
            "root": encode(dec_obj.root),
            "spec": encode(dec_obj.spec),
            "plan": encode(dec_obj.plan),
            "options": encode(dec_obj.options),
            "summary": encode(dec_obj.summary),
            "reconstruction": encode(dec_obj.reconstruction),
            "bands": bands,
            "arch": encode(dec_obj.arch),
        }

    def dec_dec(p: dict):
        root = decode(p["root"])
        nodes = list(root.walk())
        return Decomposition(
            root=root,
            spec=decode(p["spec"]),
            plan=decode(p["plan"]),
            options=decode(p["options"]),
            summary=decode(p["summary"]),
            reconstruction=decode(p["reconstruction"]),
            bands={name: nodes[index] for name, index in p["bands"].items()},
            # Absent in artifacts written before the arch became a field;
            # CompiledProgram.from_dict re-stamps it on reload.
            arch=decode(p.get("arch")),
        )

    register(Decomposition, "Decomposition", enc_dec, dec_dec)


_register_all()
