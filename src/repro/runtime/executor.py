"""AST interpreter over the simulated core group.

Each CPE executes the *same* generated program (SPMD) with its own
``Rid``/``Cid`` bindings, exactly as the athread slave function would.
The interpreter runs the 64 programs as cooperatively scheduled
coroutines: a CPE blocks (yields) when it spins on a reply counter whose
transfer has not completed or when it arrives at the mesh barrier, so
cross-CPE interactions — a receiver waiting for a broadcast its sender
has not issued yet — behave exactly like the hardware's spin loops.  A
scheduling round in which no CPE makes progress is reported as a
deadlock with each CPE's blocking reason, which turns schedule bugs into
actionable failures instead of hangs.

Two modes share all of this logic:

* ``move_data=True`` — functional execution: every DMA/RMA actually
  copies NumPy data and the result must equal ``α·A·B + β·C``;
* ``move_data=False`` — timing-only execution used by the benchmark
  simulator: the same control flow and clock bookkeeping without the
  copies.

The virtual clocks advance through compute charges and transfer
completions, so wall time *emerges from the schedule*: if the latency-
hiding pass failed to overlap a transfer, the measured time shows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ExecutionError, SynchronizationError
from repro.codegen.elementwise import get_elementwise
from repro.codegen.backend import resolve_kernel
from repro.poly.astnodes import (
    AffRef,
    ArrayRef,
    BinExpr,
    Block,
    BlockOpStmt,
    CommentStmt,
    CommStmt,
    Expr,
    ForLoop,
    IfStmt,
    IntLit,
    KernelCall,
    NaiveComputeStmt,
    Stmt,
    VarRef,
)
from repro.runtime.program import CompiledProgram
from repro.sunway.athread import AthreadRuntime
from repro.sunway.cpe import CPE
from repro.sunway.mesh import Cluster


@dataclass
class ExecutionReport:
    """Result of one kernel launch."""

    elapsed_seconds: float
    useful_flops: float
    padded_flops: float
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return self.useful_flops / self.elapsed_seconds / 1e9

    @property
    def padded_gflops(self) -> float:
        return self.padded_flops / self.elapsed_seconds / 1e9


class Executor:
    """Interpret a compiled program on a (simulated) cluster."""

    def __init__(
        self,
        program: CompiledProgram,
        cluster: Optional[Cluster] = None,
        move_data: bool = True,
        scalar_naive: bool = False,
        guard: Optional[object] = None,
    ) -> None:
        self.program = program
        self.cluster = cluster or Cluster(
            program.arch,
            fault_policy=program.options.fault_policy,
            retry_policy=program.options.retry_policy,
        )
        #: guarded mode: a CertificateGuard cross-checking every observed
        #: DMA/RMA/SPM event against the admission certificate
        self.guard = guard
        self.cluster.dma.guard = guard
        self.cluster.rma.guard = guard
        #: reply-counter watchdog budget in virtual seconds (0 = off)
        self._watchdog_s = self.cluster.fault_policy.watchdog_timeout_s
        self.runtime = AthreadRuntime(
            self.cluster, move_data, elem_bytes=program.spec.itemsize
        )
        # Single precision doubles the SIMD lanes: half the kernel time.
        self._kernel_time_factor = program.spec.itemsize / 8.0
        self.move_data = move_data
        #: interpret NaiveComputeStmt with scalar Python loops (test oracle)
        self.scalar_naive = scalar_naive
        self.kernel = resolve_kernel(
            program.arch, program.options, program.plan.kernel_shape
        )
        self._blocked: Dict[Tuple[int, int], str] = {}
        self._progress = 0

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------

    def run(
        self,
        params: Mapping[str, int],
        alpha: float = 1.0,
        beta: float = 1.0,
        reset: bool = True,
    ) -> ExecutionReport:
        program = self.program
        spec = program.spec
        M = params[spec.m_param]
        N = params[spec.n_param]
        K = params[spec.k_param]
        if program.requires_padding(M, N, K):
            raise ExecutionError(
                f"shape {M}x{N}x{K} is not a multiple of the mesh chunk "
                f"{program.plan.chunk_m}x{program.plan.chunk_n}x"
                f"{program.plan.k_step}; use run_gemm (it zero-pads, §8.1)"
            )
        batch = params.get(spec.batch_param, 1) if spec.is_batched else 1

        if reset:
            self.cluster.reset_mesh()
        self._allocate_spm()
        if self.guard is not None:
            for cpe in self.cluster.all_cpes():
                self.guard.on_spm(str(cpe), cpe.spm.used_bytes)
        self.cluster.begin_spawn()

        coroutines: List[Tuple[CPE, Generator]] = []
        for cpe in self.cluster.all_cpes():
            env: Dict[str, object] = dict(params)
            env["Rid"] = cpe.rid
            env["Cid"] = cpe.cid
            env["alpha"] = alpha
            env["beta"] = beta
            coroutines.append((cpe, self._exec_stmt(cpe, program.cpe_program.body, env)))
        self._schedule(coroutines)

        elapsed = self.cluster.elapsed()
        return ExecutionReport(
            elapsed_seconds=elapsed,
            useful_flops=spec.flops(M, N, K, batch),
            padded_flops=spec.flops(M, N, K, batch),
            stats=self.cluster.total_stats(),
        )

    def _allocate_spm(self) -> None:
        np_dtype = np.float64 if self.program.spec.dtype == "float64" else np.float32
        for cpe in self.cluster.all_cpes():
            for decl in self.program.cpe_program.buffers:
                if decl.name not in cpe.spm:
                    cpe.spm.alloc(decl.name, decl.shape, dtype=np_dtype)

    # ------------------------------------------------------------------
    # Virtual-time-ordered cooperative scheduler
    # ------------------------------------------------------------------
    #
    # Shared resources (the DMA channel, the RMA row/column channels, the
    # barrier) are modelled with availability times, so requests must be
    # presented in (approximately) virtual-time order: always resume the
    # runnable CPE whose clock is smallest — conservative discrete-event
    # simulation with the coroutine as the event source.  Generators yield
    # "step" after every clock-advancing statement and "blocked" when a
    # spin-wait cannot complete; blocked CPEs re-poll whenever anyone else
    # makes progress.

    def _schedule(self, coroutines: List[Tuple[CPE, Generator]]) -> None:
        runnable: List[Tuple[CPE, Generator]] = list(coroutines)
        blocked: List[Tuple[CPE, Generator]] = []
        while runnable or blocked:
            if not runnable:
                # Everyone is blocked: one re-poll round must progress.
                before = self._progress
                next_runnable: List[Tuple[CPE, Generator]] = []
                still_blocked: List[Tuple[CPE, Generator]] = []
                for cpe, gen in blocked:
                    status = self._resume(cpe, gen)
                    if status == "dead":
                        continue
                    target = still_blocked if status == "blocked" else next_runnable
                    target.append((cpe, gen))
                if not next_runnable and still_blocked and self._progress == before:
                    reasons = "; ".join(
                        f"CPE({r},{c}): {why}"
                        for (r, c), why in sorted(self._blocked.items())
                    )
                    raise ExecutionError(
                        f"deadlock: {len(still_blocked)} CPEs blocked with "
                        f"no progress — {reasons or 'no reasons recorded'}"
                    )
                runnable, blocked = next_runnable, still_blocked
                continue
            # Resume the runnable CPE with the smallest virtual clock.
            idx = min(range(len(runnable)), key=lambda n: runnable[n][0].clock)
            cpe, gen = runnable.pop(idx)
            before = self._progress
            status = self._resume(cpe, gen)
            if status == "blocked":
                blocked.append((cpe, gen))
            elif status != "dead":
                runnable.append((cpe, gen))
            if self._progress != before and blocked:
                # Progress may have satisfied someone's wait: re-arm them.
                runnable.extend(blocked)
                blocked = []

    def _resume(self, cpe: CPE, gen: Generator) -> str:
        try:
            return next(gen) or "step"
        except StopIteration:
            self._progress += 1
            return "dead"

    def _watchdog_error(
        self, cpe: CPE, kind: str, key: str, value: int, lost: bool
    ) -> SynchronizationError:
        """A diagnostic for a reply wait that can never complete: names the
        stalled CPE, the counter state and the poisoned buffer(s) so a
        pipeline stall reads like a bug report instead of a hang."""
        counter = cpe.reply(key)
        pending = sorted(
            f"{name}[{slot}]"
            for (name, slot), cause in cpe.spm.inflight_slots().items()
            if key in cause
        )
        if lost and cpe.lost_replies.get(key, (None, 0.0))[0] is not None:
            buffer = cpe.lost_replies[key][0]
            pending.append(f"{buffer[0]}[{buffer[1]}]")
        buffers = ", ".join(sorted(set(pending))) or "<no poisoned buffer>"
        cause = (
            "the reply was dropped in transit"
            if lost
            else f"no completion within the {self._watchdog_s}s watchdog budget"
        )
        return SynchronizationError(
            f"watchdog: {cpe!r} stalled in {kind} on reply {key!r} "
            f"(counter at {counter.value}, waiting for {value}) — {cause}; "
            f"pending transfer into {buffers}"
        )

    # ------------------------------------------------------------------
    # Statement interpretation
    # ------------------------------------------------------------------

    def _exec_stmt(self, cpe: CPE, stmt: Stmt, env: Dict[str, object]):
        if isinstance(stmt, Block):
            for s in stmt.body:
                yield from self._exec_stmt(cpe, s, env)
            return
        if isinstance(stmt, ForLoop):
            lo = self._eval_int(stmt.lo, env)
            hi = self._eval_int(stmt.hi, env)
            for value in range(lo, hi, stmt.step):
                env[stmt.var] = value
                yield from self._exec_stmt(cpe, stmt.body, env)
            env.pop(stmt.var, None)
            return
        if isinstance(stmt, IfStmt):
            if self._eval_scalar(stmt.cond, env, cpe):
                yield from self._exec_stmt(cpe, stmt.then, env)
            elif stmt.els is not None:
                yield from self._exec_stmt(cpe, stmt.els, env)
            return
        if isinstance(stmt, CommStmt):
            yield from self._exec_comm(cpe, stmt, env)
            return
        if isinstance(stmt, KernelCall):
            self._exec_kernel(cpe, stmt, env)
            yield "step"
            return
        if isinstance(stmt, BlockOpStmt):
            self._exec_blockop(cpe, stmt, env)
            yield "step"
            return
        if isinstance(stmt, NaiveComputeStmt):
            self._exec_naive(cpe, stmt, env)
            yield "step"
            return
        if isinstance(stmt, CommentStmt):
            return
        raise ExecutionError(f"cannot interpret statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Communication statements (the §7.1 extension node type)
    # ------------------------------------------------------------------

    def _reply_key(self, args: Mapping[str, object], env, slot_key: str = "reply_slot") -> str:
        slot = self._eval_int(args[slot_key], env)
        base = args["reply"] if "reply" in args else None
        return f"{base}#{slot}"

    def _exec_comm(self, cpe: CPE, stmt: CommStmt, env: Dict[str, object]):
        kind = stmt.kind
        args = stmt.args
        rt = self.runtime
        if kind == "reply_reset":
            rt.reply_reset(cpe, self._reply_key(args, env))
            self._progress += 1
            return
        if kind in ("dma_iget", "dma_iput"):
            self._issue_dma(cpe, kind, args, env)
            self._progress += 1
            yield "step"  # channel occupancy depends on virtual-time order
            return
        if kind in ("dma_wait_value", "rma_wait_value"):
            key = self._reply_key(args, env)
            value = int(args.get("value", 1))
            waited_since: Optional[float] = None
            while not rt.reply_satisfied(cpe, key, value):
                self._blocked[(cpe.rid, cpe.cid)] = f"{kind} {key} >= {value}"
                # Watchdog: a reply that the fault plane dropped will never
                # arrive — diagnose immediately.  Otherwise give the wait a
                # bounded budget of *virtual* time while the rest of the
                # mesh advances, then turn the stall into a diagnostic
                # instead of spinning until the global deadlock detector.
                if key in cpe.lost_replies:
                    raise self._watchdog_error(cpe, kind, key, value, lost=True)
                if waited_since is None:
                    waited_since = self.cluster.elapsed()
                elif (
                    self._watchdog_s > 0
                    and self.cluster.elapsed() - waited_since > self._watchdog_s
                ):
                    raise self._watchdog_error(cpe, kind, key, value, lost=False)
                yield "blocked"
            self._blocked.pop((cpe.rid, cpe.cid), None)
            rt.finish_wait(cpe, key, value)
            self._progress += 1
            yield "step"
            return
        if kind in ("rma_row_ibcast", "rma_col_ibcast"):
            slot_s = self._eval_int(args["src_slot"], env)
            slot_d = self._eval_int(args["dst_slot"], env)
            reply_slot = self._eval_int(args["reply_slot"], env)
            replys = f"{args['replys']}#{reply_slot}"
            replyr = f"{args['replyr']}#{reply_slot}"
            issue = rt.rma_row_ibcast if kind == "rma_row_ibcast" else rt.rma_col_ibcast
            issue(
                cpe,
                (str(args["src_buffer"]), slot_s),
                (str(args["dst_buffer"]), slot_d),
                int(args["size"]),
                replys,
                replyr,
            )
            self._progress += 1
            yield "step"
            return
        if kind == "synch":
            token = rt.barrier_arrive(cpe)
            while not rt.barrier_passed(token):
                self._blocked[(cpe.rid, cpe.cid)] = "synch"
                yield "blocked"
            self._blocked.pop((cpe.rid, cpe.cid), None)
            self._progress += 1
            yield "step"
            return
        raise ExecutionError(f"unknown communication statement {kind!r}")

    def _issue_dma(self, cpe: CPE, kind: str, args: Mapping[str, object], env) -> None:
        array_name = str(args["array"])
        array = self.runtime.main_array(array_name)
        ld = int(array.shape[-1])
        row = self._eval_int(args["row"], env)
        col = self._eval_int(args["col"], env)
        if args.get("batch") is not None:
            batch_idx = self._eval_int(args["batch"], env)
            offset = (batch_idx * array.shape[-2] + row) * ld + col
        else:
            offset = row * ld + col
        length = int(args["len"])
        size = int(args["size"])
        strip = ld - length
        slot = self._eval_int(args["slot"], env)
        buffer = str(args["buffer"])
        reply = self._reply_key(args, env)
        if kind == "dma_iget":
            self.runtime.dma_iget(
                cpe, (buffer, slot), array_name, offset, size, length, strip, reply
            )
        else:
            self.runtime.dma_iput(
                cpe, array_name, offset, (buffer, slot), size, length, strip, reply
            )

    # ------------------------------------------------------------------
    # Compute statements
    # ------------------------------------------------------------------

    def _slot_view(self, cpe: CPE, ref: ArrayRef, env) -> Tuple[np.ndarray, int]:
        slot = self._eval_int(ref.indices[0], env)
        cpe.spm.check_readable(ref.array, slot)
        return cpe.spm.slot(ref.array, slot), slot

    def _exec_kernel(self, cpe: CPE, stmt: KernelCall, env) -> None:
        c_view, _ = self._slot_view(cpe, stmt.c_ref, env)
        a_view, _ = self._slot_view(cpe, stmt.a_ref, env)
        b_view, _ = self._slot_view(cpe, stmt.b_ref, env)
        alpha = float(self._eval_scalar(stmt.alpha, env, cpe))
        if self.move_data:
            # Transposed entry points read the SPM tiles in their storage
            # layouts (kt×mt / nt×kt); the zero-copy transpose restores
            # the kernel's canonical contract shapes.
            a_eff = a_view.T if stmt.trans_a else a_view
            b_eff = b_view.T if stmt.trans_b else b_view
            self.kernel.execute(c_view, a_eff, b_eff, alpha)
        self.runtime.charge_compute(
            cpe, self.kernel.seconds_per_call * self._kernel_time_factor
        )
        cpe.stats["kernel_calls"] += 1
        self._progress += 1

    def _exec_blockop(self, cpe: CPE, stmt: BlockOpStmt, env) -> None:
        view, _ = self._slot_view(cpe, stmt.dst, env)
        elements = stmt.shape[0] * stmt.shape[1]
        if stmt.op == "scale":
            factor = float(self._eval_scalar(stmt.factor, env, cpe))
            if self.move_data:
                view *= factor
            rate = self.program.arch.cpe_elementwise_rate
        elif stmt.op == "apply":
            func = get_elementwise(stmt.func)
            if self.move_data:
                view[...] = func.numpy_fn(view)
            rate = func.cpe_rate
        else:
            raise ExecutionError(f"unknown block op {stmt.op!r}")
        self.runtime.charge_compute(cpe, elements / rate, kind="blockop")
        self._progress += 1

    def _exec_naive(self, cpe: CPE, stmt: NaiveComputeStmt, env) -> None:
        seconds = self.program.arch.naive_time_s(*stmt.extents)
        seconds *= self._kernel_time_factor
        if self.move_data:
            if self.scalar_naive:
                self._exec_naive_scalar(cpe, stmt, env)
            else:
                self._exec_naive_vectorised(cpe, stmt, env)
        self.runtime.charge_compute(cpe, seconds)
        cpe.stats["kernel_calls"] += 1
        self._progress += 1

    def _exec_naive_scalar(self, cpe: CPE, stmt: NaiveComputeStmt, env) -> None:
        extents = stmt.extents
        local = dict(env)
        for i0 in range(extents[0]):
            local[stmt.loop_vars[0]] = i0
            for i1 in range(extents[1]):
                local[stmt.loop_vars[1]] = i1
                for i2 in range(extents[2]):
                    local[stmt.loop_vars[2]] = i2
                    value = self._eval_scalar(stmt.value, local, cpe)
                    self._store_scalar(cpe, stmt.target, local, value, accumulate=True)

    def _exec_naive_vectorised(self, cpe: CPE, stmt: NaiveComputeStmt, env) -> None:
        """Fast path: the --no-use-asm body is always the canonical GEMM
        update, so the whole point-loop box evaluates as one matmul."""
        alpha_expr, a_ref, b_ref = _match_gemm_value(stmt.value)
        c_view, _ = self._slot_view(cpe, _slot_only(stmt.target), env)
        a_view, _ = self._slot_view(cpe, _slot_only(a_ref), env)
        b_view, _ = self._slot_view(cpe, _slot_only(b_ref), env)
        alpha = float(self._eval_scalar(alpha_expr, env, cpe))
        a_eff = a_view.T if stmt.trans_a else a_view
        b_eff = b_view.T if stmt.trans_b else b_view
        c_view += alpha * (a_eff @ b_eff)

    def _store_scalar(
        self, cpe: CPE, ref: ArrayRef, env, value: float, accumulate: bool
    ) -> None:
        view, _ = self._slot_view(cpe, _slot_only(ref), env)
        idx = tuple(self._eval_int(e, env) for e in ref.indices[1:])
        if accumulate:
            view[idx] += value
        else:
            view[idx] = value

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _eval_int(self, expr, env) -> int:
        value = self._eval_scalar(expr, env, None)
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise ExecutionError(f"expected integer, got {value!r}")
        return int(value)

    def _eval_scalar(self, expr, env, cpe: Optional[CPE]):
        if isinstance(expr, (IntLit,)):
            return expr.value
        if isinstance(expr, VarRef):
            return expr.evaluate(env)
        if isinstance(expr, AffRef):
            return expr.evaluate(env)
        if isinstance(expr, BinExpr):
            a = self._eval_scalar(expr.lhs, env, cpe)
            b = self._eval_scalar(expr.rhs, env, cpe)
            return BinExpr(expr.op, _Const(a), _Const(b)).evaluate({})
        if isinstance(expr, ArrayRef):
            if cpe is None:
                raise ExecutionError("array reference outside CPE context")
            view, _ = self._slot_view(cpe, _slot_only(expr), env)
            idx = tuple(self._eval_int(e, env) for e in expr.indices[1:])
            return float(view[idx])
        if hasattr(expr, "evaluate"):
            return expr.evaluate(env)
        if isinstance(expr, (int, float)):
            return expr
        raise ExecutionError(f"cannot evaluate expression {expr!r}")


@dataclass(frozen=True)
class _Const(Expr):
    value: object

    def evaluate(self, env):
        return self.value


def _slot_only(ref: ArrayRef) -> ArrayRef:
    """A view of the same buffer keeping only the slot index."""
    return ArrayRef(ref.array, (ref.indices[0],), ref.memory)


def _match_gemm_value(value) -> Tuple[object, ArrayRef, ArrayRef]:
    if (
        isinstance(value, BinExpr)
        and value.op == "*"
        and isinstance(value.rhs, ArrayRef)
        and isinstance(value.lhs, BinExpr)
        and value.lhs.op == "*"
        and isinstance(value.lhs.rhs, ArrayRef)
    ):
        return value.lhs.lhs, value.lhs.rhs, value.rhs
    raise ExecutionError(
        "naive compute statement does not match the canonical GEMM form"
    )


# ---------------------------------------------------------------------------
# High-level entry point with zero padding (§8.1)
# ---------------------------------------------------------------------------


def run_gemm(
    program: CompiledProgram,
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    cluster: Optional[Cluster] = None,
    move_data: bool = True,
    scalar_naive: bool = False,
    guarded: bool = False,
) -> Tuple[np.ndarray, ExecutionReport]:
    """Run a compiled program on host arrays, zero-padding to the mesh
    chunk multiples exactly as §8.1 prescribes.

    Accepts 2-D arrays (plain GEMM) or 3-D arrays (batched, leading batch
    dimension).  Returns ``(C, report)`` where ``C`` has the caller's
    shape.

    ``guarded=True`` attaches a :class:`repro.verify.CertificateGuard`
    built from the program's verification report: every observed
    DMA/RMA/SPM event is cross-checked against the static certificate,
    and any divergence raises
    :class:`~repro.errors.CertificateDivergenceError`.
    """
    spec = program.spec
    batched = spec.is_batched
    if batched:
        if A.ndim != 3 or B.ndim != 3:
            raise ExecutionError("batched program expects 3-D A and B")
        bs = A.shape[0]
        bs2 = B.shape[0]
        a_core, b_core = A.shape[1:], B.shape[1:]
    else:
        if A.ndim != 2 or B.ndim != 2:
            raise ExecutionError("non-batched program expects 2-D A and B")
        a_core, b_core = A.shape, B.shape
        bs = bs2 = 1
    # Interpret the storage shapes through the transpose flags.
    M, K = (a_core[1], a_core[0]) if spec.trans_a else a_core
    N = (b_core[0] if spec.trans_b else b_core[1])
    K2 = b_core[1] if spec.trans_b else b_core[0]
    if K != K2 or bs != bs2:
        raise ExecutionError(f"shape mismatch: A {A.shape} vs B {B.shape}")
    if C is None:
        C = np.zeros(((bs, M, N) if batched else (M, N)))
    elif C.shape != ((bs, M, N) if batched else (M, N)):
        raise ExecutionError(f"C has shape {C.shape}, expected {(M, N)}")

    Mp, Np, Kp = program.padded_shape(M, N, K)
    cluster = cluster or Cluster(
        program.arch,
        fault_policy=program.options.fault_policy,
        retry_policy=program.options.retry_policy,
    )

    np_dtype = np.float64 if spec.dtype == "float64" else np.float32

    def padded(name: str, array: np.ndarray, rows: int, cols: int) -> np.ndarray:
        shape = (bs, rows, cols) if batched else (rows, cols)
        target = cluster.memory.alloc(name, shape, dtype=np_dtype)
        target[..., : array.shape[-2], : array.shape[-1]] = array
        return target

    a_pad = (Kp, Mp) if spec.trans_a else (Mp, Kp)
    b_pad = (Np, Kp) if spec.trans_b else (Kp, Np)
    padded(spec.a_name, A, *a_pad)
    padded(spec.b_name, B, *b_pad)
    c_main = padded(spec.c_name, C, Mp, Np)

    guard = None
    if guarded:
        from repro.verify import CertificateGuard

        guard = CertificateGuard.from_program(program)
    executor = Executor(
        program, cluster, move_data=move_data, scalar_naive=scalar_naive,
        guard=guard,
    )
    params = {spec.m_param: Mp, spec.n_param: Np, spec.k_param: Kp}
    if batched:
        params[spec.batch_param] = bs
    report = executor.run(params, alpha=alpha, beta=beta)
    report.useful_flops = spec.flops(M, N, K, bs)
    report.padded_flops = spec.flops(Mp, Np, Kp, bs)
    if guard is not None:
        report.stats["guard_events"] = guard.events
        report.stats["guard_divergences"] = len(guard.divergences)

    result = c_main[..., :M, :N].copy()
    if batched:
        C[...] = result
    else:
        C[...] = result
    for name in (spec.a_name, spec.b_name, spec.c_name):
        cluster.memory.free(name)
    return C, report
