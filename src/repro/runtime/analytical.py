"""Closed-form performance model.

An independent cross-check of the discrete simulation: the same cost
parameters, composed analytically instead of event by event.  The model
follows the structure of §6/Fig. 10:

* **kernel**: ``t_k`` per micro-kernel call, 8 calls per outer iteration;
* **RMA** (when enabled): one A row-broadcast and one B column-broadcast
  per inner iteration on independent channels — hidden behind the kernel
  when pipelining is on (all but the first per outer iteration), serial
  otherwise;
* **DMA**: the mesh moves ``64·(A_τ+B_τ)`` bytes per outer iteration
  through the shared channel (per *inner* iteration without RMA — the 8×
  traffic the broadcasts eliminate) — hidden behind compute when
  pipelining is on (``⌈K/256⌉−1`` overlaps, so small K exposes the first
  fetch), fully serial otherwise;
* **C traffic**: one get + one put of the 512×512 chunk per mesh pass,
  never hidden.

Agreement between this formula and the event simulation is asserted by
the test-suite (within a tolerance that covers scheduling effects the
formula ignores), which guards both against regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.options import CompilerOptions
from repro.sunway.arch import SW26010PRO, ArchSpec


@dataclass(frozen=True)
class AnalyticalBreakdown:
    """Per-phase seconds for one full GEMM (diagnostic output)."""

    kernel: float
    rma_exposed: float
    dma_exposed: float
    c_traffic: float
    sync: float
    spawn: float

    @property
    def total(self) -> float:
        return (
            self.kernel
            + self.rma_exposed
            + self.dma_exposed
            + self.c_traffic
            + self.sync
            + self.spawn
        )


def predict(
    M: int,
    N: int,
    K: int,
    options: Optional[CompilerOptions] = None,
    arch: ArchSpec = SW26010PRO,
    batch: int = 1,
) -> AnalyticalBreakdown:
    """Closed-form phase breakdown for one shape/variant."""
    options = options or CompilerOptions.full()
    kernel = arch.micro_kernel
    mesh = arch.mesh_rows
    chunk_m, chunk_n = kernel.mt * mesh, kernel.nt * mesh
    n_chunks = (M // chunk_m) * (N // chunk_n) * batch
    use_rma = options.enable_rma and arch.rma_supported
    hide = options.enable_latency_hiding

    if options.use_asm:
        t_k = arch.kernel_time_s(kernel.mt, kernel.nt, kernel.kt)
    else:
        t_k = arch.naive_time_s(kernel.mt, kernel.nt, kernel.kt)

    kernels_per_chunk = K // kernel.kt  # per CPE
    inner = mesh if use_rma else 1
    outer_iters = K // (kernel.kt * inner)

    # --- DMA channel occupancy -------------------------------------------
    ab_bytes = kernel.a_bytes + kernel.b_bytes
    msgs_per_fetch = 2 * arch.num_cpes
    fetch_time = (
        msgs_per_fetch * arch.dma_startup_us * 1e-6
        + arch.num_cpes * ab_bytes / (arch.dma_bandwidth_gbs * 1e9)
    )
    # One fetch per outer iteration with RMA, one per kernel without.
    fetches_per_chunk = outer_iters if use_rma else kernels_per_chunk

    # --- RMA -----------------------------------------------------------------
    t_rma = max(arch.rma_time_s(kernel.a_bytes), arch.rma_time_s(kernel.b_bytes))

    # --- sync -------------------------------------------------------------------
    syncs_per_chunk = kernels_per_chunk if use_rma else 0
    sync = n_chunks * syncs_per_chunk * arch.sync_us * 1e-6

    # --- compose per chunk --------------------------------------------------------
    kernel_time = n_chunks * kernels_per_chunk * t_k
    if use_rma:
        if hide:
            # Broadcasts hide behind kernels except the first of each outer
            # iteration; DMA hides behind the inner pipeline except the
            # first fetch of each chunk (⌈K/256⌉−1 overlaps, §6.1) and any
            # excess of the channel time over the compute it hides behind.
            rma_exposed = n_chunks * outer_iters * t_rma
            compute_per_outer = inner * (t_k + arch.sync_us * 1e-6)
            exposed_per_outer = max(0.0, fetch_time - compute_per_outer)
            dma_exposed = n_chunks * (
                fetch_time + (outer_iters - 1) * exposed_per_outer
            )
        else:
            rma_exposed = n_chunks * kernels_per_chunk * t_rma
            dma_exposed = n_chunks * fetches_per_chunk * fetch_time
    else:
        rma_exposed = 0.0
        if hide:
            exposed = max(0.0, fetch_time - t_k)
            dma_exposed = n_chunks * (fetch_time + (fetches_per_chunk - 1) * exposed)
        else:
            # Without double buffering the staggered per-CPE waits keep the
            # channel busy; the period is whichever of channel and compute
            # dominates, so the exposed DMA is the excess over compute.
            dma_exposed = n_chunks * fetches_per_chunk * max(
                0.0, fetch_time - t_k
            ) + n_chunks * min(fetch_time, t_k)

    # --- C tile traffic -------------------------------------------------------------
    c_bytes = arch.num_cpes * kernel.c_bytes
    c_time = 2 * (
        arch.num_cpes * arch.dma_startup_us * 1e-6
        + c_bytes / (arch.dma_bandwidth_gbs * 1e9)
    )
    c_traffic = n_chunks * c_time

    return AnalyticalBreakdown(
        kernel=kernel_time,
        rma_exposed=rma_exposed,
        dma_exposed=dma_exposed,
        c_traffic=c_traffic,
        sync=sync,
        spawn=arch.spawn_us * 1e-6,
    )


def predict_gflops(
    M: int,
    N: int,
    K: int,
    options: Optional[CompilerOptions] = None,
    arch: ArchSpec = SW26010PRO,
    batch: int = 1,
) -> float:
    """Convenience wrapper returning Gflops."""
    breakdown = predict(M, N, K, options, arch, batch)
    return 2.0 * M * N * K * batch / breakdown.total / 1e9
