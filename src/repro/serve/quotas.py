"""Per-tenant token-bucket quotas.

A multi-tenant daemon must bound what any single tenant can demand: the
classic token bucket gives each tenant ``capacity`` tokens refilled at
``refill_per_s``, every admitted request spends one (ops may weigh
more, e.g. a tune request costs more than a ping), and an empty bucket
rejects the request with a structured ``QuotaExceededError`` — the
client sees a clean protocol error, not a hang.

The clock is injectable so tests (and the seeded load generator) can
drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError

#: Token cost of each operation class.  Cheap introspection ops are
#: free so monitoring never counts against a tenant's budget.
DEFAULT_COSTS: Dict[str, float] = {
    "ping": 0.0,
    "stats": 0.0,
    # Health probes must stay answerable precisely when the daemon is
    # overloaded — a probe that costs tokens would blind the load
    # balancer at the worst moment.
    "health": 0.0,
    "compile": 1.0,
    "run": 1.0,
    "verify": 1.0,
    "warmup": 2.0,
    "tune": 4.0,
    "shutdown": 0.0,
}


@dataclass(frozen=True)
class QuotaConfig:
    """Token-bucket parameters shared by every tenant.

    ``capacity=None`` disables quota enforcement entirely (every
    request is granted) — the single-tenant library default.
    """

    capacity: Optional[float] = 60.0
    refill_per_s: float = 30.0
    #: Tenants start with a full bucket (burst-friendly) by default.
    initial_fill: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ConfigurationError(
                f"quota capacity must be positive (or None), got {self.capacity}"
            )
        if self.refill_per_s < 0:
            raise ConfigurationError(
                f"quota refill rate must be >= 0, got {self.refill_per_s}"
            )
        if not 0.0 <= self.initial_fill <= 1.0:
            raise ConfigurationError(
                f"initial_fill must be in [0, 1], got {self.initial_fill}"
            )


class _Bucket:
    __slots__ = ("tokens", "stamp")

    def __init__(self, tokens: float, stamp: float) -> None:
        self.tokens = tokens
        self.stamp = stamp


class QuotaManager:
    """Thread-safe token buckets, one per tenant, created on first use."""

    def __init__(
        self,
        config: Optional[QuotaConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        # No config means no quotas (the daemon's --no-quotas path), NOT
        # the default limits — silently enforcing defaults the operator
        # turned off would be the worse surprise.
        self.config = config if config is not None else QuotaConfig(capacity=None)
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, _Bucket] = {}
        self.granted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.config.capacity is not None

    def try_acquire(self, tenant: str, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens from ``tenant``'s bucket if available."""
        if not self.enabled or cost <= 0.0:
            with self._lock:
                self.granted[tenant] = self.granted.get(tenant, 0) + 1
            return True
        capacity = float(self.config.capacity)
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _Bucket(
                    capacity * self.config.initial_fill, now
                )
            else:
                elapsed = max(0.0, now - bucket.stamp)
                bucket.tokens = min(
                    capacity, bucket.tokens + elapsed * self.config.refill_per_s
                )
                bucket.stamp = now
            if bucket.tokens >= cost:
                bucket.tokens -= cost
                self.granted[tenant] = self.granted.get(tenant, 0) + 1
                return True
            self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
            return False

    def tokens(self, tenant: str) -> Optional[float]:
        """Current (refilled) token balance, or ``None`` when disabled."""
        if not self.enabled:
            return None
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                return float(self.config.capacity) * self.config.initial_fill
            elapsed = max(0.0, now - bucket.stamp)
            return min(
                float(self.config.capacity),
                bucket.tokens + elapsed * self.config.refill_per_s,
            )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.config.capacity,
                "refill_per_s": self.config.refill_per_s,
                "tenants": sorted(
                    set(self.granted) | set(self.rejected) | set(self._buckets)
                ),
                "granted": dict(self.granted),
                "rejected": dict(self.rejected),
                "granted_total": sum(self.granted.values()),
                "rejected_total": sum(self.rejected.values()),
            }
