"""Persistent request journal: the daemon's write-ahead log.

``RequestJournal`` makes an acknowledged request survive ``kill -9``.
Every blocking kernel request the daemon admits is appended — and
fsync'd — as an ``accepted`` record *before* it is dispatched; once the
response has been computed a ``completed`` record marks it done.  A
daemon that dies between the two leaves the record pending, and the
next boot replays exactly the pending set through the normal dispatch
path.  Replay is at-least-once, but compile keys are content-addressed
and single-flight, so re-running a request that actually finished is a
cache hit — the effect is exactly-once per kernel artifact.

On-disk format (documented in DESIGN.md Appendix F): newline-delimited
JSON segments ``journal-NNNNNN.ndjson``.  Each record is a JSON object
``{"lsn", "type", "body", "crc"}`` where ``crc`` is the CRC32 of the
canonical JSON encoding of the record *without* its ``crc`` field.  A
torn trailing write (the usual ``kill -9`` artifact) or a bit-flipped
record fails its CRC and is skipped with a counter — recovery never
crashes on a damaged journal, it serves what it can prove intact.

Rotation + compaction: when the active segment reaches
``segment_max_records`` the journal starts a fresh segment, rewrites
only the still-pending records into it, and deletes the old segments —
completed entries are garbage-collected so the journal stays bounded
by the in-flight window, not by traffic history.

Like the artifact store (PR 6 convention), the journal degrades rather
than crashes on a read-only directory: writes become no-ops counted in
``dropped``, ``degraded`` flips in :meth:`stats`, and the daemon keeps
serving — durability is lost, availability is not.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

_PREFIX = "journal-"
_SUFFIX = ".ndjson"

#: Record types.  ``accepted`` carries the request frame as ``body``;
#: ``completed`` carries ``{"ok": bool}`` and tombstones its ``lsn``.
RECORD_TYPES = ("accepted", "completed")


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_crc(record: Dict[str, Any]) -> int:
    """CRC32 over the canonical encoding of ``record`` sans ``crc``."""
    body = {k: v for k, v in record.items() if k != "crc"}
    return zlib.crc32(_canonical(body).encode("utf-8"))


def encode_record(lsn: int, rtype: str, body: Dict[str, Any]) -> bytes:
    record = {"lsn": lsn, "type": rtype, "body": body}
    record["crc"] = record_crc(record)
    return (_canonical(record) + "\n").encode("utf-8")


def segment_name(index: int) -> str:
    return f"{_PREFIX}{index:06d}{_SUFFIX}"


def _segment_index(path: Path) -> int:
    return int(path.name[len(_PREFIX) : -len(_SUFFIX)])


def scan_segments(root: Path) -> Tuple[Dict[int, Dict[str, Any]], Dict[str, int]]:
    """Read every segment under ``root`` without mutating anything.

    Returns ``(pending, counters)`` where ``pending`` maps lsn →
    accepted request body for records never marked completed, and
    ``counters`` reports ``records``/``skipped_torn``/``skipped_crc``/
    ``max_lsn``/``max_segment``.  Used both by :class:`RequestJournal`
    recovery and by external inspectors (the chaos harness) that must
    not disturb a journal a daemon still owns.
    """
    pending: Dict[int, Dict[str, Any]] = {}
    counters = {
        "records": 0,
        "skipped_torn": 0,
        "skipped_crc": 0,
        "max_lsn": 0,
        "max_segment": -1,
    }
    root = Path(root)
    if not root.is_dir():
        return pending, counters
    for path in sorted(root.glob(f"{_PREFIX}*{_SUFFIX}")):
        try:
            counters["max_segment"] = max(
                counters["max_segment"], _segment_index(path)
            )
        except ValueError:
            continue
        try:
            raw = path.read_bytes()
        except OSError:
            continue
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # A torn trailing write after kill -9, or plain garbage.
                counters["skipped_torn"] += 1
                continue
            if not isinstance(record, dict):
                counters["skipped_torn"] += 1
                continue
            crc = record.get("crc")
            if not isinstance(crc, int) or crc != record_crc(record):
                counters["skipped_crc"] += 1
                continue
            lsn = record.get("lsn")
            rtype = record.get("type")
            body = record.get("body")
            if (
                not isinstance(lsn, int)
                or rtype not in RECORD_TYPES
                or not isinstance(body, dict)
            ):
                counters["skipped_crc"] += 1
                continue
            counters["records"] += 1
            counters["max_lsn"] = max(counters["max_lsn"], lsn)
            if rtype == "accepted":
                pending[lsn] = body
            else:
                pending.pop(lsn, None)
    return pending, counters


class RequestJournal:
    """Append-only, CRC-tagged, fsync'd NDJSON write-ahead log."""

    def __init__(
        self,
        root: Path,
        segment_max_records: int = 1024,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.segment_max_records = max(1, int(segment_max_records))
        self.fsync = fsync
        self.degraded = False
        self.appended = 0
        self.completed = 0
        self.dropped = 0
        self.compactions = 0
        self._lock = threading.Lock()
        self._file = None
        self._segment_index = 0
        self._records_in_segment = 0
        self._pending: Dict[int, Dict[str, Any]] = {}
        self._scan_counters: Dict[str, int] = {}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            self._degrade()
        pending, counters = scan_segments(self.root)
        self._pending = dict(sorted(pending.items()))
        self._scan_counters = counters
        self.recovered_pending = len(pending)
        self._next_lsn = counters["max_lsn"] + 1
        if not self.degraded:
            with self._lock:
                # Compact on open: pending records move into a fresh
                # segment, history (and any torn tail) is dropped.
                self._compact_locked(counters["max_segment"] + 1)

    # -- write path ----------------------------------------------------------

    def record_accepted(self, body: Dict[str, Any]) -> Optional[int]:
        """Durably journal one admitted request; returns its lsn.

        Returns ``None`` in degraded mode (read-only journal dir) — the
        caller serves the request anyway, it just will not survive a
        crash."""
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            if not self._append_locked(lsn, "accepted", dict(body)):
                return None
            self._pending[lsn] = dict(body)
            self.appended += 1
            return lsn

    def record_completed(self, lsn: int, ok: bool = True) -> None:
        """Tombstone a journaled request once its response exists."""
        with self._lock:
            self._pending.pop(lsn, None)
            if self._append_locked(lsn, "completed", {"ok": bool(ok)}):
                self.completed += 1

    def _append_locked(self, lsn: int, rtype: str, body: Dict[str, Any]) -> bool:
        if self.degraded:
            self.dropped += 1
            return False
        try:
            if self._file is None or self._records_in_segment >= (
                self.segment_max_records
            ):
                self._compact_locked(self._segment_index + 1)
                if self.degraded:
                    self.dropped += 1
                    return False
            frame = encode_record(lsn, rtype, body)
            self._file.write(frame)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._records_in_segment += 1
            return True
        except (OSError, ValueError):
            self._degrade()
            self.dropped += 1
            return False

    def _compact_locked(self, new_index: int) -> None:
        """Open segment ``new_index``, rewrite pending, drop the rest."""
        try:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            path = self.root / segment_name(new_index)
            handle = open(path, "ab")
            for lsn, body in sorted(self._pending.items()):
                handle.write(encode_record(lsn, "accepted", body))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._file = handle
            self._segment_index = new_index
            self._records_in_segment = len(self._pending)
            self.compactions += 1
            for old in sorted(self.root.glob(f"{_PREFIX}*{_SUFFIX}")):
                try:
                    if _segment_index(old) < new_index:
                        old.unlink()
                except (OSError, ValueError):
                    pass  # best-effort GC; stale segments re-compact next boot
        except OSError:
            self._degrade()

    def _degrade(self) -> None:
        """Read-only journal dir: keep serving, stop journaling."""
        self.degraded = True
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    # -- read path -----------------------------------------------------------

    def pending(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Snapshot of journaled-but-never-completed requests, lsn order."""
        with self._lock:
            return sorted(self._pending.items())

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "dir": str(self.root),
                "degraded": self.degraded,
                "pending": len(self._pending),
                "recovered_pending": self.recovered_pending,
                "appended": self.appended,
                "completed": self.completed,
                "dropped": self.dropped,
                "compactions": self.compactions,
                "segment_index": self._segment_index,
                "skipped_torn": self._scan_counters.get("skipped_torn", 0),
                "skipped_crc": self._scan_counters.get("skipped_crc", 0),
            }

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
