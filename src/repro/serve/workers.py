"""Bounded worker pool over the priority-class fair queue.

One pool serves *every* blocking job in the daemon — interactive
compiles, batch tunes, warmup precompilation — so the scheduling policy
lives entirely in :class:`~repro.serve.queue.FairPriorityQueue`: a
worker simply executes whatever the queue hands it next.  This is also
what :meth:`repro.service.service.CompileService.warmup` submits to (at
``warmup`` priority), which is how warmup traffic becomes incapable of
starving interactive requests: the moment an interactive job is queued
it is served before any queued warmup job.

Jobs resolve :class:`concurrent.futures.Future`\\ s, so the asyncio
front-end can ``asyncio.wrap_future`` them and the synchronous
``warmup`` path can ``result()`` them — one dispatch mechanism for both
worlds.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.serve.queue import DEFAULT_PRIORITY, PRIORITIES, FairPriorityQueue


@dataclass
class _Job:
    fn: Callable[[], object]
    future: Future = field(default_factory=Future)
    priority: str = DEFAULT_PRIORITY
    tenant: str = "default"


class WorkerPool:
    """Fixed set of daemon threads draining a :class:`FairPriorityQueue`."""

    def __init__(
        self,
        workers: int = 4,
        queue: Optional[FairPriorityQueue] = None,
        name: str = "swgemm-worker",
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"worker pool needs >= 1 worker, got {workers}")
        # NOT `queue or FairPriorityQueue()`: an empty queue has
        # len() == 0 and is falsy, which would silently discard the
        # caller's (possibly bounded) queue and drain a private one.
        self.queue = queue if queue is not None else FairPriorityQueue()
        # Shed/expired jobs never reach a worker; their waiting callers
        # still deserve an answer, so the queue's drop notifications fail
        # the job futures with the structured overload/deadline error.
        self.queue.drop_handler = self._on_drop
        self.workers = workers
        self.executed: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.failed = 0
        self.dropped = 0
        self.cancelled = 0
        self.restarted = 0
        self._active = 0
        self._cond = threading.Condition()
        self._threads = [
            threading.Thread(
                target=self._run_forever, name=f"{name}-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        fn: Callable[[], object],
        priority: str = DEFAULT_PRIORITY,
        tenant: str = "default",
        deadline_at: Optional[float] = None,
    ) -> Future:
        """Queue ``fn`` for execution; returns its future.

        ``deadline_at`` (absolute, on the queue's clock) lets the queue
        shed the job *before* dispatch if the caller's end-to-end budget
        runs out while it waits; the future then fails with
        :class:`~repro.errors.DeadlineExceededError`.  A bounded queue
        may also raise :class:`~repro.errors.OverloadError` here, or
        later fail the future with it if the job is shed for a
        higher-priority arrival."""
        job = _Job(fn=fn, priority=priority, tenant=tenant)
        self.queue.put(
            job, priority=priority, tenant=tenant, deadline_at=deadline_at
        )
        return job.future

    def _on_drop(self, item: object, exc: BaseException) -> None:
        # Called under the queue lock (see FairPriorityQueue.drop_handler);
        # taking self._cond here would invert the drain() lock order, so
        # the counter is a bare increment (a stats race is benign).
        self.dropped += 1
        future = getattr(item, "future", None)
        if future is not None and future.set_running_or_notify_cancel():
            future.set_exception(exc)

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued and in-progress job has finished.

        Returns ``False`` if the timeout expired first.  New submissions
        are *not* prevented — combine with ``queue.close()`` (or
        :meth:`shutdown`) for a terminal drain."""
        with self._cond:
            return self._cond.wait_for(
                lambda: len(self.queue) == 0 and self._active == 0,
                timeout=timeout,
            )

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop the pool.  ``drain=True`` finishes queued work first;
        ``drain=False`` abandons queued jobs (their futures are
        cancelled).  Returns ``False`` on drain timeout."""
        drained = True
        if drain:
            drained = self.drain(timeout=timeout)
        self.queue.close()
        if not drain:
            while True:
                job = self.queue.get(timeout=0)
                if job is None:
                    break
                job.future.cancel()
        for thread in self._threads:
            thread.join(timeout=timeout)
        return drained

    # -- worker loop ---------------------------------------------------------

    def _run_forever(self) -> None:
        """Keep one worker slot alive across dispatch-loop failures.

        ``_run`` already routes job exceptions into their futures; the
        loop itself can still die on pathological cases (a future whose
        state was corrupted, interpreter shutdown races).  Losing the
        thread would silently shrink the pool for the daemon's whole
        lifetime, so the slot restarts its loop and counts the event —
        surfaced as ``restarted`` in :meth:`stats`."""
        while True:
            try:
                self._run()
                return  # queue closed and drained: orderly exit
            except BaseException:
                with self._cond:
                    self.restarted += 1

    def _run(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:  # closed and drained
                return
            with self._cond:
                self._active += 1
            ran = False
            try:
                if job.future.set_running_or_notify_cancel():
                    ran = True
                    try:
                        job.future.set_result(job.fn())
                    except BaseException as exc:  # delivered via the future
                        self.failed += 1
                        job.future.set_exception(exc)
            finally:
                with self._cond:
                    self._active -= 1
                    # Jobs whose future was cancelled before they ran
                    # must not inflate the per-class fairness counters.
                    if ran:
                        self.executed[job.priority] += 1
                    else:
                        self.cancelled += 1
                    self._cond.notify_all()

    def stats(self) -> Dict[str, object]:
        with self._cond:
            active = self._active
        return {
            "workers": self.workers,
            "active": active,
            "failed": self.failed,
            "dropped": self.dropped,
            "cancelled": self.cancelled,
            "restarted": self.restarted,
            "executed": dict(self.executed),
            "queue": self.queue.stats(),
        }
