"""Priority-class request queue with per-tenant fair scheduling.

The daemon classifies every request into one of three priority classes —
``interactive`` ahead of ``batch`` ahead of ``warmup`` — and serves the
classes strictly in that order, so a flood of precompilation traffic can
never delay a user-facing compile (the head-of-line blocking swTVM-style
deep-learning streams are famous for).  *Within* a class the queue is
fair across tenants: each tenant owns a FIFO sub-queue and the class
round-robins over the tenants that currently have work, so one tenant
submitting a thousand requests interleaves 1:1 with a tenant submitting
ten instead of starving it.

Overload protection (all opt-in, see :mod:`repro.serve.overload`):

* **Admission watermarks** — ``caps`` maps each class to the *total*
  queue depth at which its arrivals stop being admitted, ordered
  ``warmup < batch < interactive``: as pressure builds, warmup arrivals
  are refused first, then batch, and interactive traffic owns the full
  depth.  An arrival over its watermark first tries to **shed** one
  queued item from the lowest-priority non-empty class strictly below
  it (the youngest item — the one that would have been served last);
  only when nothing lower-priority is queued is the arrival itself
  rejected with :class:`~repro.errors.OverloadError` carrying a
  ``retry_after_s`` hint from the observed drain rate.

* **Deadline shedding** — ``put(..., deadline_at=...)`` records the
  absolute monotonic deadline; ``get`` silently discards entries whose
  deadline passed *before* handing anything to a worker (the
  ``expired`` counters — an expired request never wastes a worker).

Dropped items (shed or expired) are reported through ``drop_handler``
so the worker pool can fail their futures; the handler must not call
back into the queue.  ``wait_observer`` receives each dequeued item's
queue-wait seconds (after the lock is released) — the brownout
controller's signal.

The queue is a plain thread-safe structure (condition variable, no
asyncio) because it sits between the asyncio protocol front-end and the
blocking compiler worker threads; both sides touch it from their own
execution domain.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import ConfigurationError, DeadlineExceededError, OverloadError

#: The priority classes, highest priority first.  Order is the scheduling
#: policy: a class is only served when every class before it is empty.
PRIORITIES: Tuple[str, ...] = ("interactive", "batch", "warmup")

#: Default class for requests that do not state one.
DEFAULT_PRIORITY = "interactive"

#: Bounds of the ``retry_after_s`` hint (seconds).
RETRY_AFTER_MIN_S = 0.05
RETRY_AFTER_MAX_S = 30.0
#: Hint used before any drain rate has been observed.
RETRY_AFTER_DEFAULT_S = 1.0


def check_priority(priority: str) -> str:
    if priority not in PRIORITIES:
        raise ConfigurationError(
            f"unknown priority class {priority!r}; expected one of {PRIORITIES}"
        )
    return priority


@dataclass
class _Entry:
    """One queued item plus its admission-time bookkeeping."""

    item: object
    enqueued_at: float
    deadline_at: Optional[float] = None


class FairPriorityQueue:
    """Strict-priority, tenant-fair FIFO queue with optional bounds.

    ``put`` never blocks; ``get`` blocks until an item is available, the
    optional timeout expires (returns ``None``) or the queue is closed
    *and* drained (returns ``None``).  Closing wakes every waiter: items
    already queued are still handed out — that is the graceful-drain
    contract — but further ``put`` calls are refused.

    With ``caps`` (per-class admission watermarks over the total depth)
    ``put`` may also shed queued lower-priority work or raise
    :class:`~repro.errors.OverloadError`; without them (the default) it
    admits unconditionally, exactly the historical behaviour.
    """

    def __init__(
        self,
        caps: Optional[Dict[str, int]] = None,
        clock: Callable[[], float] = time.monotonic,
        drain_alpha: float = 0.2,
    ) -> None:
        if caps is not None:
            unknown = set(caps) - set(PRIORITIES)
            if unknown:
                raise ConfigurationError(
                    f"unknown priority class(es) in caps: {sorted(unknown)}"
                )
            for name, cap in caps.items():
                if cap < 1:
                    raise ConfigurationError(
                        f"queue cap for {name!r} must be >= 1, got {cap}"
                    )
        self._cond = threading.Condition()
        self._clock = clock
        self.caps = dict(caps) if caps is not None else None
        #: per class: tenant → FIFO of entries
        self._queues: Dict[str, "OrderedDict[str, Deque[_Entry]]"] = {
            p: OrderedDict() for p in PRIORITIES
        }
        #: per class: round-robin order over tenants that have work
        self._order: Dict[str, Deque[str]] = {p: deque() for p in PRIORITIES}
        self._size = 0
        self._closed = False
        self.enqueued: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.dequeued: Dict[str, int] = {p: 0 for p in PRIORITIES}
        #: items evicted to make room for a higher-priority arrival
        self.shed: Dict[str, int] = {p: 0 for p in PRIORITIES}
        #: items whose deadline passed while queued (never dispatched)
        self.expired: Dict[str, int] = {p: 0 for p in PRIORITIES}
        #: arrivals refused at admission (nothing lower-priority to shed)
        self.rejected: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.high_water = 0
        #: Called as ``drop_handler(item, exc)`` for every shed/expired
        #: item, outside scheduling decisions but under the queue lock —
        #: must be cheap and must not call back into the queue.
        self.drop_handler: Optional[Callable[[object, BaseException], None]] = None
        #: Called with each dequeued item's queue-wait seconds (after
        #: the lock is released) — feeds the brownout controller.
        self.wait_observer: Optional[Callable[[float], None]] = None
        #: EWMA of seconds between dequeues — the drain-rate estimate
        #: behind ``retry_after_s``.
        self._drain_alpha = drain_alpha
        self._drain_interval_s: Optional[float] = None
        self._last_dequeue_at: Optional[float] = None

    def __len__(self) -> int:
        with self._cond:
            return self._size

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # -- admission -----------------------------------------------------------

    def retry_after_s(self) -> float:
        """How long a rejected caller should wait before retrying.

        Estimated as (current depth × EWMA seconds-per-dequeue): the
        time the queue needs to drain what is already in it, clamped to
        sane bounds.  Before any dequeue has been observed the default
        hint is returned."""
        with self._cond:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        if self._drain_interval_s is None:
            return RETRY_AFTER_DEFAULT_S
        estimate = max(1, self._size) * self._drain_interval_s
        return min(RETRY_AFTER_MAX_S, max(RETRY_AFTER_MIN_S, estimate))

    def put(
        self,
        item: object,
        priority: str = DEFAULT_PRIORITY,
        tenant: str = "default",
        deadline_at: Optional[float] = None,
    ) -> None:
        check_priority(priority)
        with self._cond:
            if self._closed:
                raise ConfigurationError(
                    "cannot enqueue on a closed FairPriorityQueue"
                )
            cap = None if self.caps is None else self.caps.get(priority)
            if cap is not None and self._size >= cap:
                # Over this class's watermark: make room by shedding the
                # lowest-priority queued work, or refuse the arrival.
                if not self._shed_below_locked(priority):
                    self.rejected[priority] += 1
                    raise OverloadError(
                        f"queue is over the {priority!r} admission "
                        f"watermark ({self._size} queued >= cap {cap}) and "
                        "no lower-priority work can be shed",
                        retry_after_s=self._retry_after_locked(),
                        priority=priority,
                    )
            tenants = self._queues[priority]
            fifo = tenants.get(tenant)
            if fifo is None:
                fifo = tenants[tenant] = deque()
            if not fifo:
                # Tenant (re)joins the round-robin rotation at the back,
                # behind tenants already waiting their turn.
                self._order[priority].append(tenant)
            fifo.append(
                _Entry(
                    item=item,
                    enqueued_at=self._clock(),
                    deadline_at=deadline_at,
                )
            )
            self._size += 1
            self.enqueued[priority] += 1
            self.high_water = max(self.high_water, self._size)
            self._cond.notify()

    def _shed_below_locked(self, priority: str) -> bool:
        """Evict one queued item of a class strictly below ``priority``.

        Victim selection walks classes lowest-priority-first and, inside
        the chosen class, takes the *youngest* entry (the one that would
        have been served last) — the least-regret eviction.  Returns
        ``True`` when a victim was shed."""
        rank = PRIORITIES.index(priority)
        for victim_class in reversed(PRIORITIES[rank + 1:]):
            tenants = self._queues[victim_class]
            if not tenants:
                continue
            victim_tenant = max(
                tenants, key=lambda t: tenants[t][-1].enqueued_at
            )
            fifo = tenants[victim_tenant]
            entry = fifo.pop()
            if not fifo:
                del tenants[victim_tenant]
                self._order[victim_class].remove(victim_tenant)
            self._size -= 1
            self.shed[victim_class] += 1
            self._drop_locked(
                entry.item,
                OverloadError(
                    f"request shed from the {victim_class!r} queue to admit "
                    f"higher-priority {priority!r} work",
                    retry_after_s=self._retry_after_locked(),
                    priority=victim_class,
                    shed=True,
                ),
            )
            return True
        return False

    def _drop_locked(self, item: object, exc: BaseException) -> None:
        handler = self.drop_handler
        if handler is not None:
            try:
                handler(item, exc)
            except Exception:
                pass  # a broken handler must not poison scheduling

    # -- dequeue -------------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[object]:
        with self._cond:
            while True:
                popped = self._pop_locked()
                if popped is not None:
                    entry, wait_s = popped
                    break
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
        observer = self.wait_observer
        if observer is not None:
            try:
                observer(wait_s)
            except Exception:
                pass
        return entry.item

    def _pop_locked(self) -> Optional[Tuple[_Entry, float]]:
        now = self._clock()
        for priority in PRIORITIES:
            order = self._order[priority]
            while order:
                tenant = order[0]
                fifo = self._queues[priority][tenant]
                entry = fifo.popleft()
                if fifo:
                    # Fairness: the tenant goes to the back of the rotation
                    # after being served once.
                    order.rotate(-1)
                else:
                    order.popleft()
                    del self._queues[priority][tenant]
                self._size -= 1
                if (
                    entry.deadline_at is not None
                    and now >= entry.deadline_at
                ):
                    # Expired while queued: shed it *before* dispatch so
                    # no worker is ever wasted on a caller that gave up.
                    self.expired[priority] += 1
                    self._drop_locked(
                        entry.item,
                        DeadlineExceededError(
                            "deadline expired after "
                            f"{1e3 * (now - entry.enqueued_at):.0f} ms in "
                            f"the {priority!r} queue; shed before dispatch",
                            phase="queue",
                        ),
                    )
                    continue
                self.dequeued[priority] += 1
                if self._last_dequeue_at is not None:
                    interval = max(0.0, now - self._last_dequeue_at)
                    if self._drain_interval_s is None:
                        self._drain_interval_s = interval
                    else:
                        self._drain_interval_s = (
                            self._drain_alpha * interval
                            + (1.0 - self._drain_alpha)
                            * self._drain_interval_s
                        )
                self._last_dequeue_at = now
                return entry, max(0.0, now - entry.enqueued_at)
        return None

    def close(self) -> None:
        """Refuse further puts; wake every blocked ``get``.

        Items already queued are still served — callers drain until
        ``get`` returns ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- reporting -----------------------------------------------------------

    def _depths_locked(self) -> Dict[str, int]:
        return {
            p: sum(len(q) for q in self._queues[p].values())
            for p in PRIORITIES
        }

    def depths(self) -> Dict[str, int]:
        """Currently queued items per priority class."""
        with self._cond:
            return self._depths_locked()

    def stats(self) -> Dict[str, object]:
        with self._cond:
            return {
                "size": self._size,
                "high_water": self.high_water,
                "closed": self._closed,
                "caps": dict(self.caps) if self.caps is not None else None,
                "enqueued": dict(self.enqueued),
                "dequeued": dict(self.dequeued),
                "shed": dict(self.shed),
                "expired": dict(self.expired),
                "rejected": dict(self.rejected),
                "retry_after_s": round(self._retry_after_locked(), 3),
                "depths": self._depths_locked(),
            }
