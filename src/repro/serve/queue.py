"""Priority-class request queue with per-tenant fair scheduling.

The daemon classifies every request into one of three priority classes —
``interactive`` ahead of ``batch`` ahead of ``warmup`` — and serves the
classes strictly in that order, so a flood of precompilation traffic can
never delay a user-facing compile (the head-of-line blocking swTVM-style
deep-learning streams are famous for).  *Within* a class the queue is
fair across tenants: each tenant owns a FIFO sub-queue and the class
round-robins over the tenants that currently have work, so one tenant
submitting a thousand requests interleaves 1:1 with a tenant submitting
ten instead of starving it.

The queue is a plain thread-safe structure (condition variable, no
asyncio) because it sits between the asyncio protocol front-end and the
blocking compiler worker threads; both sides touch it from their own
execution domain.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: The priority classes, highest priority first.  Order is the scheduling
#: policy: a class is only served when every class before it is empty.
PRIORITIES: Tuple[str, ...] = ("interactive", "batch", "warmup")

#: Default class for requests that do not state one.
DEFAULT_PRIORITY = "interactive"


def check_priority(priority: str) -> str:
    if priority not in PRIORITIES:
        raise ConfigurationError(
            f"unknown priority class {priority!r}; expected one of {PRIORITIES}"
        )
    return priority


class FairPriorityQueue:
    """Strict-priority, tenant-fair FIFO queue.

    ``put`` never blocks; ``get`` blocks until an item is available, the
    optional timeout expires (returns ``None``) or the queue is closed
    *and* drained (returns ``None``).  Closing wakes every waiter: items
    already queued are still handed out — that is the graceful-drain
    contract — but further ``put`` calls are refused.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: per class: tenant → FIFO of items
        self._queues: Dict[str, "OrderedDict[str, Deque[object]]"] = {
            p: OrderedDict() for p in PRIORITIES
        }
        #: per class: round-robin order over tenants that have work
        self._order: Dict[str, Deque[str]] = {p: deque() for p in PRIORITIES}
        self._size = 0
        self._closed = False
        self.enqueued: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.dequeued: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.high_water = 0

    def __len__(self) -> int:
        with self._cond:
            return self._size

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(
        self,
        item: object,
        priority: str = DEFAULT_PRIORITY,
        tenant: str = "default",
    ) -> None:
        check_priority(priority)
        with self._cond:
            if self._closed:
                raise ConfigurationError(
                    "cannot enqueue on a closed FairPriorityQueue"
                )
            tenants = self._queues[priority]
            fifo = tenants.get(tenant)
            if fifo is None:
                fifo = tenants[tenant] = deque()
            if not fifo:
                # Tenant (re)joins the round-robin rotation at the back,
                # behind tenants already waiting their turn.
                self._order[priority].append(tenant)
            fifo.append(item)
            self._size += 1
            self.enqueued[priority] += 1
            self.high_water = max(self.high_water, self._size)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[object]:
        with self._cond:
            while True:
                item = self._pop_locked()
                if item is not None:
                    return item
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def _pop_locked(self) -> Optional[object]:
        for priority in PRIORITIES:
            order = self._order[priority]
            if not order:
                continue
            tenant = order[0]
            fifo = self._queues[priority][tenant]
            item = fifo.popleft()
            if fifo:
                # Fairness: the tenant goes to the back of the rotation
                # after being served once.
                order.rotate(-1)
            else:
                order.popleft()
                del self._queues[priority][tenant]
            self._size -= 1
            self.dequeued[priority] += 1
            return item
        return None

    def close(self) -> None:
        """Refuse further puts; wake every blocked ``get``.

        Items already queued are still served — callers drain until
        ``get`` returns ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depths(self) -> Dict[str, int]:
        """Currently queued items per priority class."""
        with self._cond:
            return {
                p: sum(len(q) for q in self._queues[p].values())
                for p in PRIORITIES
            }

    def stats(self) -> Dict[str, object]:
        with self._cond:
            return {
                "size": self._size,
                "high_water": self.high_water,
                "closed": self._closed,
                "enqueued": dict(self.enqueued),
                "dequeued": dict(self.dequeued),
                "depths": {
                    p: sum(len(q) for q in self._queues[p].values())
                    for p in PRIORITIES
                },
            }
