"""The newline-delimited-JSON serving protocol.

One frame per line, one JSON object per frame.  Requests carry an
``id`` the caller chooses (echoed verbatim on the response, so a client
may pipeline), an ``op``, a ``tenant``, a ``priority`` class and an
op-specific ``params`` object; responses carry ``ok`` plus either a
``result`` or a structured ``error`` (exception type + message), and a
``meta`` object with serving telemetry (priority, queue/execution
times, cache source).

The module also owns the wire codecs for kernel descriptors: a flat
``params`` dict → ``(GemmSpec, CompilerOptions, ArchSpec)``.  The same
codec runs in the daemon's workers and in the load generator, so a
seeded trace can compute the content-addressed cache key of every
request it is about to send — that is how the benchmark proves
single-flight dedup (compiles executed < unique keys requested).

Framing limits: a frame longer than :data:`MAX_FRAME_BYTES` is a
protocol error — the daemon answers with a structured error and drops
the connection (an NDJSON stream cannot resynchronise after an
oversized line).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.serve.queue import DEFAULT_PRIORITY, PRIORITIES, check_priority

#: Hard ceiling on one frame (request or response), newline included.
MAX_FRAME_BYTES = 1 << 20

#: Bumped on incompatible protocol changes; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Every operation the daemon understands.
OPS = (
    "ping",
    "stats",
    "health",
    "compile",
    "run",
    "tune",
    "verify",
    "warmup",
    "shutdown",
)

_MAX_TENANT_LEN = 64


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One JSON object → one ``\\n``-terminated wire frame."""
    try:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"payload is not JSON-serialisable: {exc}") from exc
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """One wire line → one JSON object, loudly rejecting garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# ---------------------------------------------------------------------------
# Requests and responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One client → daemon frame.

    ``deadline_ms`` is the caller's *relative* end-to-end budget: the
    daemon anchors it at receipt time (client and server clocks are
    never compared), sheds the request if the budget dies while it is
    queued, and hands the remaining budget to the worker as its compile
    deadline.  ``None`` (the default, and the only value old clients
    can send) means unbounded — the wire encoding omits the key
    entirely, so deadline-less traffic is byte-identical to the
    pre-deadline protocol."""

    id: object
    op: str
    tenant: str = "default"
    priority: str = DEFAULT_PRIORITY
    params: Dict[str, Any] = field(default_factory=dict)
    deadline_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "op": self.op,
            "tenant": self.tenant,
            "priority": self.priority,
            "params": self.params,
        }
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    def encode(self) -> bytes:
        return encode_frame(self.to_dict())

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Request":
        if "op" not in payload:
            raise ProtocolError("request frame is missing 'op'")
        op = payload["op"]
        if op not in OPS:
            raise ProtocolError(
                f"unknown op {op!r}; expected one of {OPS}"
            )
        rid = payload.get("id")
        if rid is not None and not isinstance(rid, (int, str)):
            raise ProtocolError(
                f"request id must be an int or string, got {type(rid).__name__}"
            )
        tenant = payload.get("tenant", "default")
        if (
            not isinstance(tenant, str)
            or not tenant
            or len(tenant) > _MAX_TENANT_LEN
        ):
            raise ProtocolError(
                "tenant must be a non-empty string of at most "
                f"{_MAX_TENANT_LEN} characters"
            )
        priority = payload.get("priority", DEFAULT_PRIORITY)
        try:
            check_priority(priority if isinstance(priority, str) else repr(priority))
        except ConfigurationError as exc:
            raise ProtocolError(str(exc)) from exc
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError(
                f"params must be a JSON object, got {type(params).__name__}"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or not deadline_ms > 0
                or deadline_ms != deadline_ms  # NaN
                or deadline_ms == float("inf")
            ):
                raise ProtocolError(
                    "deadline_ms must be a positive finite number, got "
                    f"{deadline_ms!r}"
                )
            deadline_ms = float(deadline_ms)
        return Request(
            id=rid,
            op=op,
            tenant=tenant,
            priority=priority,
            params=params,
            deadline_ms=deadline_ms,
        )

    @staticmethod
    def decode(line: bytes) -> "Request":
        return Request.from_dict(decode_frame(line))


@dataclass(frozen=True)
class Response:
    """One daemon → client frame."""

    id: object
    ok: bool
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "ok": self.ok,
            "result": self.result,
            "error": self.error,
            "meta": self.meta,
        }

    def encode(self) -> bytes:
        return encode_frame(self.to_dict())

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Response":
        if "ok" not in payload or not isinstance(payload["ok"], bool):
            raise ProtocolError("response frame is missing a boolean 'ok'")
        error = payload.get("error")
        if error is not None and not isinstance(error, dict):
            raise ProtocolError("response error must be a JSON object")
        meta = payload.get("meta") or {}
        if not isinstance(meta, dict):
            raise ProtocolError("response meta must be a JSON object")
        return Response(
            id=payload.get("id"),
            ok=payload["ok"],
            result=payload.get("result"),
            error=error,
            meta=meta,
        )

    @staticmethod
    def decode(line: bytes) -> "Response":
        return Response.from_dict(decode_frame(line))

    @staticmethod
    def failure(
        rid: object, exc: BaseException, meta: Optional[Dict[str, Any]] = None
    ) -> "Response":
        error: Dict[str, Any] = {
            "type": type(exc).__name__, "message": str(exc)
        }
        # Overload rejections carry a structured back-off hint so the
        # client can honor the server's drain-rate estimate instead of
        # guessing; only the new error types have the attribute, so
        # legacy error frames are byte-identical.
        retry_after = getattr(exc, "retry_after_s", None)
        if isinstance(retry_after, (int, float)):
            error["retry_after_s"] = round(float(retry_after), 3)
        return Response(
            id=rid,
            ok=False,
            error=error,
            meta=meta or {},
        )


# ---------------------------------------------------------------------------
# Kernel descriptors on the wire
# ---------------------------------------------------------------------------

#: params keys that map straight onto CompilerOptions fields.
_OPTION_KEYS = (
    "batch",
    "use_asm",
    "enable_rma",
    "enable_latency_hiding",
    "fusion",
    "prologue_func",
    "epilogue_func",
    "kernel_backend",
    "verify",
    # structured schedule policy: a mode string ("recipe"/"optimize"/
    # "off") or a {"mode", "allow", "deny"} object; parsed by
    # SchedulePolicy.parse via the facade's option coercion, so bad
    # values surface as structured ProtocolErrors like every other knob.
    "schedule",
)


def arch_from_name(name: str):
    """Resolve a wire architecture name via the arch registry."""
    from repro.errors import ConfigurationError
    from repro.sunway import arch_names, get_arch

    try:
        return get_arch(str(name))
    except ConfigurationError:
        raise ProtocolError(
            f"unknown arch {name!r}; expected one of {arch_names()}"
        ) from None


#: Every params key the kernel ops understand; anything else is a typo
#: the daemon must reject, not silently ignore.
KNOWN_PARAM_KEYS = frozenset(_OPTION_KEYS) | {
    "arch", "tile", "micro_kernel", "fault", "fault_policy", "retry_policy",
    "dtype", "trans_a", "trans_b",
    "M", "N", "K", "seed", "alpha", "batch_count",
    "timeout", "guarded", "budget", "drain",
}


def spec_and_options(params: Dict[str, Any]):
    """Kernel params → ``(GemmSpec, CompilerOptions, ArchSpec)``.

    The option path reuses :func:`repro.api._coerce_options`, so the
    wire surface inherits the facade's semantics exactly (unknown knobs
    rejected, ``use_asm=False`` derives latency hiding off).  Fault
    injection rides along per request: either the ``fault`` shorthand
    ``{"seed", "rate", "max_retries"}`` (the documented chaos profile)
    or a full ``fault_policy`` / ``retry_policy`` object as produced by
    :meth:`repro.faults.FaultPolicy.to_dict`.
    """
    from repro.api import _coerce_options
    from repro.core.options import TileConfig
    from repro.core.spec import GemmSpec
    from repro.faults import FaultPolicy, RetryPolicy

    unknown = set(params) - KNOWN_PARAM_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown param key(s) {sorted(unknown)}; valid keys are "
            f"{sorted(KNOWN_PARAM_KEYS)}"
        )
    arch = arch_from_name(params.get("arch", "sw26010pro"))
    overrides: Dict[str, Any] = {
        key: params[key] for key in _OPTION_KEYS if key in params
    }
    tile = params.get("tile")
    if tile is not None:
        if not isinstance(tile, dict):
            raise ProtocolError("tile must be a JSON object (mt/nt/kt/...)")
        try:
            overrides["tile_config"] = TileConfig(**tile)
        except (TypeError, ConfigurationError) as exc:
            raise ProtocolError(f"invalid tile config: {exc}") from exc
    micro_kernel = params.get("micro_kernel")
    if micro_kernel is not None:
        # "MTxNTxKT" shorthand for a kernel-shape request; composes with
        # kernel_backend (which picks the generator for that shape).
        if "tile" in params:
            raise ProtocolError("micro_kernel and tile are mutually exclusive")
        try:
            mt, nt, kt = (int(d) for d in str(micro_kernel).split("x"))
            overrides["tile_config"] = TileConfig(mt, nt, kt)
        except (TypeError, ValueError, ConfigurationError) as exc:
            raise ProtocolError(
                f"invalid micro_kernel {micro_kernel!r} (expected "
                f"'MTxNTxKT'): {exc}"
            ) from exc
    fault = params.get("fault")
    if fault is not None:
        if not isinstance(fault, dict):
            raise ProtocolError("fault must be a JSON object (seed/rate/...)")
        overrides["fault_policy"] = FaultPolicy.chaos(
            seed=int(fault.get("seed", 0)), rate=float(fault.get("rate", 0.05))
        )
        overrides["retry_policy"] = RetryPolicy(
            max_retries=int(fault.get("max_retries", 3))
        )
    if "fault_policy" in params:
        overrides["fault_policy"] = FaultPolicy.from_dict(params["fault_policy"])
    if "retry_policy" in params:
        overrides["retry_policy"] = RetryPolicy.from_dict(params["retry_policy"])
    try:
        options = _coerce_options(None, overrides)
    except ConfigurationError as exc:
        raise ProtocolError(str(exc)) from exc
    fusion = options.fusion
    try:
        spec = GemmSpec(
            batch_param="BS" if options.batch else None,
            prologue_func=options.prologue_func if fusion == "prologue" else None,
            epilogue_func=options.epilogue_func if fusion == "epilogue" else None,
            dtype=params.get("dtype", "float64"),
            trans_a=bool(params.get("trans_a", False)),
            trans_b=bool(params.get("trans_b", False)),
        )
    except ConfigurationError as exc:
        raise ProtocolError(str(exc)) from exc
    return spec, options, arch


def shape_hint(params: Dict[str, Any]) -> Optional[Tuple[int, ...]]:
    """``(M, N, K[, batch])`` from kernel params, when all dims are given."""
    if not all(dim in params for dim in ("M", "N", "K")):
        return None
    dims = [params["M"], params["N"], params["K"]]
    if params.get("batch_count"):
        dims.append(params["batch_count"])
    try:
        return tuple(int(d) for d in dims)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"non-integer shape dimension: {exc}") from exc
