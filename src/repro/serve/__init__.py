"""Multi-tenant asynchronous compilation serving.

The subsystem that turns the in-process
:class:`~repro.service.service.CompileService` into a daemon
(``swgemm serve``): an asyncio NDJSON front-end, a priority-class fair
queue with per-tenant round-robin, token-bucket quotas, a bounded
blocking worker pool, and a blocking client.  Layers:

* :mod:`repro.serve.protocol` — the wire format (frames, requests,
  responses, spec/option coercion);
* :mod:`repro.serve.queue` / :mod:`repro.serve.workers` — the fair
  priority queue and the worker pool draining it;
* :mod:`repro.serve.quotas` — per-tenant token buckets;
* :mod:`repro.serve.isolation` — recyclable compile worker
  subprocesses with deadlines, memory budgets and the poison-key
  circuit breaker;
* :mod:`repro.serve.journal` — the fsync'd write-ahead request journal
  replayed after a crash;
* :mod:`repro.serve.overload` — overload protection: bounded-queue
  admission watermarks, deadline-budget arithmetic, and the brownout
  hysteresis controller;
* :mod:`repro.serve.server` — :class:`KernelServer`, the daemon;
* :mod:`repro.serve.client` — :class:`Client`, the blocking caller
  (re-exported as ``repro.api.Client`` / ``repro.api.connect``).
"""

from repro.serve.client import IDEMPOTENT_OPS, Client, RemoteError
from repro.serve.isolation import CircuitBreaker, ProcessIsolation
from repro.serve.journal import RequestJournal
from repro.serve.overload import (
    BROWNOUT,
    HEALTHY,
    BrownoutController,
    OverloadConfig,
    class_caps,
    deadline_at,
    is_expired,
    merge_timeout,
    remaining_s,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    Request,
    Response,
    decode_frame,
    encode_frame,
)
from repro.serve.queue import DEFAULT_PRIORITY, PRIORITIES, FairPriorityQueue
from repro.serve.quotas import DEFAULT_COSTS, QuotaConfig, QuotaManager
from repro.serve.server import (
    JOURNALED_OPS,
    KernelServer,
    ServeConfig,
    ServerHandle,
    start_in_thread,
)
from repro.serve.workers import WorkerPool

__all__ = [
    "BROWNOUT",
    "BrownoutController",
    "CircuitBreaker",
    "Client",
    "DEFAULT_COSTS",
    "DEFAULT_PRIORITY",
    "FairPriorityQueue",
    "HEALTHY",
    "IDEMPOTENT_OPS",
    "JOURNALED_OPS",
    "KernelServer",
    "MAX_FRAME_BYTES",
    "OPS",
    "OverloadConfig",
    "PRIORITIES",
    "PROTOCOL_VERSION",
    "ProcessIsolation",
    "QuotaConfig",
    "QuotaManager",
    "RemoteError",
    "Request",
    "RequestJournal",
    "Response",
    "ServeConfig",
    "ServerHandle",
    "WorkerPool",
    "class_caps",
    "deadline_at",
    "decode_frame",
    "encode_frame",
    "is_expired",
    "merge_timeout",
    "remaining_s",
    "start_in_thread",
]
