"""Subprocess worker isolation for the compilation daemon.

PR 6 ran compile jobs on threads *inside* the daemon process, so one
poisoned kernel — a pass that raises ``SystemExit``, spins forever, or
eats the heap — took every tenant down with it.  This module moves the
dangerous part (actual codegen) into a pool of recyclable worker
subprocesses:

* :class:`ProcessIsolation` exposes a ``compile(spec, arch, options,
  timeout_s=None)`` callable with the exact signature
  :class:`~repro.service.service.CompileService` expects from its
  ``compile_fn`` seam, so the daemon swaps it in with
  :meth:`~repro.service.service.CompileService.set_compile_fn` and the
  whole cache/single-flight/admission stack above it is unchanged.
* Job specs are pickled over a :mod:`multiprocessing` pipe; results
  come back as :meth:`~repro.runtime.program.CompiledProgram.to_dict`
  payloads, so a worker crash can never corrupt parent state.
* Every job has a wall-clock deadline.  A worker that blows it is
  hard-killed and replaced; the daemon answers the caller with a
  structured :class:`~repro.errors.CompileTimeout`.
* A worker that dies mid-job (``SystemExit``, signal, OOM-kill) is
  reaped and replaced; the caller gets a
  :class:`~repro.errors.WorkerCrashError`.  Likewise a job whose peak
  RSS exceeds the configured memory budget — the worker is recycled
  before the bloat can accumulate.
* Crashes/timeouts/overruns put a *strike* on the offending
  content-addressed cache key in a :class:`CircuitBreaker`; at
  ``poison_threshold`` strikes the key is quarantined and further
  requests fail fast with :class:`~repro.errors.PoisonedKernelError`
  instead of feeding a retry storm.  After ``cooldown_s`` one half-open
  trial compile is allowed through; success clears the quarantine.

The chaos hooks ride on the request's own
:class:`~repro.faults.FaultPolicy` (``compile_crash_rate`` /
``compile_hang_rate``): the *worker subprocess* draws from the seeded
``compile`` stream, so tests and CI can make a specific kernel crash
or hang deterministically while everything else compiles normally.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import resource
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import repro.errors as errors_mod
from repro.errors import (
    CompilationError,
    CompileTimeout,
    ConfigurationError,
    PoisonedKernelError,
    WorkerCrashError,
)


def _peak_rss_mb() -> float:
    """Peak RSS of this process in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _worker_main(conn) -> None:
    """Worker-subprocess loop: recv pickled job, compile, send result.

    Clean compiler failures are reported structurally (exception type +
    message) so the parent re-raises them without striking the key.
    ``SystemExit``/``KeyboardInterrupt`` intentionally propagate — they
    kill the worker, which is exactly the crash the parent must contain.
    """
    from repro.core.pipeline import GemmCompiler
    from repro.faults import FaultInjector

    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:  # orderly shutdown
            return
        spec, arch, options, timeout_s = job
        policy = getattr(options, "fault_policy", None)
        if policy is not None and policy.enabled:
            injector = FaultInjector(policy).fork("compile")
            if injector.compile_hang():
                # Simulated hung pass: stall until the parent's deadline
                # kills us.  Real wall-clock sleep, not simulated time.
                time.sleep(policy.compile_hang_s)
            if injector.compile_crash():
                raise SystemExit(13)  # the segfault-equivalent
        try:
            program = GemmCompiler(arch, options).compile(
                spec, timeout_s=timeout_s
            )
            reply: Dict[str, Any] = {
                "ok": True,
                "program": program.to_dict(),
                "peak_rss_mb": _peak_rss_mb(),
            }
        except Exception as exc:
            reply = {
                "ok": False,
                "error_type": type(exc).__name__,
                "message": str(exc),
                "peak_rss_mb": _peak_rss_mb(),
            }
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            return


def _rebuild_error(type_name: str, message: str) -> BaseException:
    """Worker-reported clean failure → the matching local exception."""
    cls = getattr(errors_mod, type_name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        try:
            return cls(message)
        except TypeError:
            pass  # exotic constructor signature; fall through
    return CompilationError(f"{type_name}: {message}")


class CircuitBreaker:
    """Per-key strike counter with quarantine, cooldown and half-open.

    Deterministic and clock-injectable (the quotas convention): tests
    drive the state machine with a fake monotonic clock.  State is
    persisted best-effort to ``state_path`` (atomic JSON write; an
    OSError means a read-only cache dir and the breaker simply stays
    session-local, mirroring the artifact store's degradation).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        state_path: Optional[Path] = None,
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"poison threshold must be >= 1, got {threshold}"
            )
        if cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0, got {cooldown_s}"
            )
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.state_path = Path(state_path) if state_path is not None else None
        self.trips = 0
        self.persist_errors = 0
        self._lock = threading.Lock()
        self._strikes: Dict[str, int] = {}
        self._opened: Dict[str, float] = {}
        self._trial: set = set()
        self._load()

    # -- state machine -------------------------------------------------------

    def check(self, key: str) -> None:
        """Gate one compile attempt; raises for quarantined keys.

        A key past its cooldown admits exactly one half-open trial;
        concurrent attempts during the trial still fail fast."""
        with self._lock:
            opened = self._opened.get(key)
            if opened is None:
                return
            elapsed = self.clock() - opened
            if elapsed >= self.cooldown_s and key not in self._trial:
                self._trial.add(key)
                return
            raise PoisonedKernelError(
                f"kernel {key[:16]}… is quarantined after "
                f"{self._strikes.get(key, self.threshold)} worker "
                f"crashes/timeouts; retry after the "
                f"{self.cooldown_s:g}s cooldown",
                key=key,
                strikes=self._strikes.get(key, self.threshold),
            )

    def record_failure(self, key: str) -> int:
        """One crash/timeout/overrun strike; returns the strike count."""
        with self._lock:
            strikes = self._strikes.get(key, 0) + 1
            self._strikes[key] = strikes
            was_trial = key in self._trial
            self._trial.discard(key)
            if strikes >= self.threshold or was_trial:
                if key not in self._opened or was_trial:
                    self.trips += 1
                self._opened[key] = self.clock()
            self._persist_locked()
            return strikes

    def record_success(self, key: str) -> None:
        """A completed compile clears the key entirely."""
        with self._lock:
            dirty = key in self._strikes or key in self._opened
            self._strikes.pop(key, None)
            self._opened.pop(key, None)
            self._trial.discard(key)
            if dirty:
                self._persist_locked()

    def quarantined(self) -> List[str]:
        with self._lock:
            return sorted(self._opened)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "strikes": dict(sorted(self._strikes.items())),
                "quarantined": sorted(self._opened),
                "trips": self.trips,
                "persist_errors": self.persist_errors,
            }

    # -- persistence (best-effort, store convention) -------------------------

    def _load(self) -> None:
        if self.state_path is None:
            return
        try:
            data = json.loads(self.state_path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(data, dict):
            return
        strikes = data.get("strikes")
        if isinstance(strikes, dict):
            self._strikes = {
                str(k): int(v)
                for k, v in strikes.items()
                if isinstance(v, int) and v > 0
            }
        # Quarantine survives restart; monotonic stamps do not, so the
        # cooldown restarts from boot time for previously-open keys.
        now = self.clock()
        for key in data.get("quarantined", []):
            self._opened[str(key)] = now

    def _persist_locked(self) -> None:
        if self.state_path is None:
            return
        payload = {
            "strikes": dict(sorted(self._strikes.items())),
            "quarantined": sorted(self._opened),
        }
        try:
            self.state_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.state_path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(json.dumps(payload, sort_keys=True))
                os.replace(tmp, self.state_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.persist_errors += 1  # read-only cache dir: session-local


class _Worker:
    """One recyclable compile subprocess and its parent-side pipe end."""

    def __init__(self, ctx, serial: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"swgemm-isolated-{serial}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.serial = serial
        self.jobs = 0

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5.0)
        # Release the Process object's pipes/semaphores eagerly.
        try:
            self.proc.close()
        except (ValueError, AttributeError):
            pass

    def stop(self, timeout: float = 2.0) -> None:
        """Orderly shutdown: ask nicely, then kill."""
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.proc.join(timeout=timeout)
        self.kill()


class ProcessIsolation:
    """Recyclable subprocess pool behind the ``compile_fn`` seam."""

    def __init__(
        self,
        workers: int = 2,
        deadline_s: float = 30.0,
        memory_budget_mb: Optional[float] = None,
        poison_threshold: int = 3,
        cooldown_s: float = 300.0,
        recycle_after: int = 64,
        state_path: Optional[Path] = None,
        mp_context: str = "fork",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"isolation pool needs >= 1 worker, got {workers}"
            )
        if deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ConfigurationError(
                f"memory_budget_mb must be > 0, got {memory_budget_mb}"
            )
        self.workers = workers
        self.deadline_s = deadline_s
        self.memory_budget_mb = memory_budget_mb
        self.recycle_after = max(1, int(recycle_after))
        self.breaker = CircuitBreaker(
            threshold=poison_threshold,
            cooldown_s=cooldown_s,
            clock=clock,
            state_path=state_path,
        )
        self._ctx = multiprocessing.get_context(mp_context)
        self._lock = threading.Lock()
        self._closed = False
        self._serial = 0
        self.spawned = 0
        self.restarts = 0
        self.kills = 0
        self.crashes = 0
        self.timeouts = 0
        self.memory_overruns = 0
        self.jobs_ok = 0
        self.peak_rss_mb = 0.0
        self._idle: "queue_mod.Queue[_Worker]" = queue_mod.Queue()
        for _ in range(workers):
            self._idle.put(self._spawn())

    # -- pool plumbing -------------------------------------------------------

    def _spawn(self) -> _Worker:
        with self._lock:
            self._serial += 1
            serial = self._serial
            self.spawned += 1
        return _Worker(self._ctx, serial)

    def _replace(self, worker: _Worker, killed: bool = False) -> None:
        """Reap a dead/poisoned worker and put a fresh one in the pool."""
        worker.kill()
        with self._lock:
            self.restarts += 1
            if killed:
                self.kills += 1
            closed = self._closed
        if not closed:
            self._idle.put(self._spawn())

    def _release(self, worker: _Worker) -> None:
        if worker.jobs >= self.recycle_after:
            # Planned recycling bounds leak/fragmentation accumulation.
            self._replace(worker)
        else:
            self._idle.put(worker)

    # -- the compile_fn seam -------------------------------------------------

    def compile(self, spec, arch, options, timeout_s: Optional[float] = None):
        """Compile in a worker subprocess; the ``compile_fn`` contract.

        Raises :class:`PoisonedKernelError` for quarantined keys,
        :class:`CompileTimeout` past the deadline (worker killed),
        :class:`WorkerCrashError` when the worker dies or busts its
        memory budget, and the re-built original exception for clean
        compiler failures."""
        from repro.service.keys import cache_key

        key = cache_key(spec, arch, options)
        self.breaker.check(key)
        deadline = self.deadline_s
        if timeout_s is not None:
            deadline = min(deadline, float(timeout_s))
        worker = self._idle.get()
        timed_out = False
        reply: Optional[Dict[str, Any]] = None
        try:
            worker.conn.send((spec, arch, options, timeout_s))
            if worker.conn.poll(deadline):
                reply = worker.conn.recv()
            else:
                timed_out = True
        except (EOFError, OSError, BrokenPipeError):
            pass  # worker died under the job: the crash path below
        if timed_out:
            # Hung past the wall-clock deadline: hard kill, replace.
            self._replace(worker, killed=True)
            self.timeouts += 1
            strikes = self.breaker.record_failure(key)
            # Say which budget actually fired: the caller's propagated
            # end-to-end deadline, or this pool's own worker deadline —
            # an operator tuning --worker-deadline should not chase
            # timeouts that a tenant's deadline_ms caused.
            which = (
                "propagated request deadline"
                if timeout_s is not None and float(timeout_s) < self.deadline_s
                else "worker deadline"
            )
            raise CompileTimeout(
                f"isolated compile of kernel {key[:16]}… exceeded its "
                f"{deadline:g}s {which}; worker killed and replaced "
                f"(strike {strikes}/{self.breaker.threshold})",
                timeout_s=deadline,
            )
        if reply is None:
            # send failed or recv hit EOF: the worker died under the
            # job (SystemExit, signal, OOM-kill).
            exitcode = self._reap(worker)
            self.crashes += 1
            strikes = self.breaker.record_failure(key)
            raise WorkerCrashError(
                f"isolated compile worker died (exit code {exitcode}) "
                f"while building kernel {key[:16]}…; worker replaced "
                f"(strike {strikes}/{self.breaker.threshold})",
                key=key,
            )
        worker.jobs += 1
        peak = float(reply.get("peak_rss_mb", 0.0))
        with self._lock:
            self.peak_rss_mb = max(self.peak_rss_mb, peak)
        budget = self.memory_budget_mb
        if budget is not None and peak > budget:
            # The job finished but bloated the worker past its budget:
            # recycle before the bloat hurts the next tenant, and strike
            # the key — a kernel that OOMs the worker is poison too.
            self._replace(worker, killed=True)
            self.memory_overruns += 1
            strikes = self.breaker.record_failure(key)
            raise WorkerCrashError(
                f"isolated compile of kernel {key[:16]}… peaked at "
                f"{peak:.0f} MiB, over the {budget:g} MiB budget; worker "
                f"recycled (strike {strikes}/{self.breaker.threshold})",
                key=key,
            )
        self._release(worker)
        if not reply.get("ok"):
            # Clean compiler failure: not a crash, no strike — the
            # original exception type is re-raised for the caller.
            raise _rebuild_error(
                str(reply.get("error_type", "CompilationError")),
                str(reply.get("message", "isolated compile failed")),
            )
        from repro.runtime.program import CompiledProgram

        self.jobs_ok += 1
        self.breaker.record_success(key)
        return CompiledProgram.from_dict(reply["program"])

    def _reap(self, worker: _Worker) -> Optional[int]:
        worker.proc.join(timeout=5.0)
        exitcode = worker.proc.exitcode
        self._replace(worker)
        return exitcode

    # -- reporting / lifecycle ----------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "mode": "process",
                "workers": self.workers,
                "deadline_s": self.deadline_s,
                "memory_budget_mb": self.memory_budget_mb,
                "spawned": self.spawned,
                "restarts": self.restarts,
                "kills": self.kills,
                "crashes": self.crashes,
                "timeouts": self.timeouts,
                "memory_overruns": self.memory_overruns,
                "jobs_ok": self.jobs_ok,
                "peak_rss_mb": round(self.peak_rss_mb, 1),
                "poison": self.breaker.stats(),
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue_mod.Empty:
                break
            worker.stop()

    def __enter__(self) -> "ProcessIsolation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
