"""The multi-tenant asynchronous compilation daemon.

``KernelServer`` promotes :class:`~repro.service.service.CompileService`
from an in-process object into a long-lived service: an asyncio
front-end (``asyncio.start_server`` over a unix socket or TCP) accepts
newline-delimited-JSON requests from many tenants, a per-tenant
token-bucket :class:`~repro.serve.quotas.QuotaManager` admits them, and
a bounded :class:`~repro.serve.workers.WorkerPool` executes the blocking
compiler work scheduled by the priority-class fair queue — interactive
ahead of batch ahead of warmup, round-robin across tenants within a
class.  Compilation itself stays single-flight: N tenants requesting
the same content-addressed kernel concurrently pay for exactly one
compile (the service's in-flight rendezvous), and the artifact lands in
the hash-prefix-sharded store for every later process.

Shutdown is *graceful by default*: draining stops accepting work (new
requests are answered with a structured ``ServerDrainingError``) but
every queued and in-flight job still completes and is answered before
the listener closes — no tenant ever loses an accepted request to a
restart.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import socket
import stat
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    DegradedModeError,
    OverloadError,
    ProtocolError,
    QuotaExceededError,
    ServeError,
    ServerDrainingError,
)
from repro.serve import overload as overload_mod
from repro.serve import protocol
from repro.serve.overload import BROWNOUT, OverloadConfig
from repro.serve.protocol import MAX_FRAME_BYTES, Request, Response
from repro.serve.quotas import DEFAULT_COSTS, QuotaConfig, QuotaManager
from repro.serve.queue import FairPriorityQueue
from repro.serve.workers import WorkerPool
from repro.service import CompileService, ServiceConfig

#: Address of a listening server: a unix-socket path or ``(host, port)``.
Address = Union[str, Tuple[str, int]]

#: Ops the write-ahead journal covers: the blocking kernel verbs whose
#: loss a tenant would notice.  ``ping``/``stats`` are free to re-issue,
#: ``shutdown`` must not outlive the daemon, and ``warmup`` re-derives
#: its own work list, so none of them are journaled.
JOURNALED_OPS = frozenset({"compile", "run", "tune", "verify"})


def _clear_stale_unix_socket(path: str) -> None:
    """Remove a socket file left behind by a crashed/killed daemon.

    ``asyncio.start_unix_server`` fails with ``EADDRINUSE`` when the
    path exists, even though nothing is listening — after a SIGKILL the
    file always lingers.  Probe it: a refused connection proves the old
    daemon is gone (safe to unlink); a successful one proves a live
    daemon owns the address (a real conflict, reported structurally).
    """
    try:
        mode = os.stat(path).st_mode
    except FileNotFoundError:
        return
    if not stat.S_ISSOCK(mode):
        raise ConfigurationError(
            f"socket path {path!r} exists and is not a socket"
        )
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(path)
    except (ConnectionRefusedError, FileNotFoundError):
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
    except OSError as exc:
        raise ConfigurationError(
            f"cannot probe existing socket {path!r}: {exc}"
        ) from exc
    else:
        raise ConfigurationError(
            f"socket {path!r} is in use by a live daemon"
        )
    finally:
        probe.close()


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one :class:`KernelServer`."""

    #: Unix-socket path; ``None`` selects TCP on ``host``/``port``.
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    #: TCP port; 0 lets the OS pick one (reported by :meth:`start`).
    port: int = 0
    #: Blocking compiler workers (the bounded pool).
    workers: int = 4
    #: Per-tenant token-bucket parameters; ``None`` disables quotas.
    quota: Optional[QuotaConfig] = field(default_factory=QuotaConfig)
    #: Seconds a graceful drain may take before the pool is abandoned.
    drain_timeout_s: float = 60.0
    #: Stop (with drain) after this many requests; ``None`` = run until
    #: told.  Lets scripts and CI bound a daemon without signal games.
    max_requests: Optional[int] = None
    #: ``"thread"`` runs compiles on the in-process pool (PR 6
    #: behaviour); ``"process"`` moves them into recyclable worker
    #: subprocesses with deadlines, memory budgets and the poison-key
    #: circuit breaker (:mod:`repro.serve.isolation`).
    isolation: str = "thread"
    #: Directory of the write-ahead request journal; ``None`` disables
    #: journaling (an accepted request then dies with the daemon).
    journal_dir: Optional[str] = None
    #: Worker crashes/timeouts before a cache key is quarantined.
    poison_threshold: int = 3
    #: Wall-clock deadline of one isolated compile job, seconds.
    worker_deadline_s: float = 30.0
    #: Peak-RSS budget of one isolated compile job, MiB; ``None``
    #: disables the check.
    memory_budget_mb: Optional[float] = None
    #: Overload protection (bounded queues, default deadlines, brownout);
    #: ``None`` — the default — leaves every overload mechanism off and
    #: the daemon's wire behaviour byte-identical to the unprotected one.
    overload: Optional[OverloadConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.drain_timeout_s < 0:
            raise ConfigurationError("drain_timeout_s must be >= 0")
        if self.max_requests is not None and self.max_requests < 1:
            raise ConfigurationError("max_requests must be >= 1 or None")
        if self.isolation not in ("thread", "process"):
            raise ConfigurationError(
                f"isolation must be 'thread' or 'process', got "
                f"{self.isolation!r}"
            )
        if self.poison_threshold < 1:
            raise ConfigurationError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.worker_deadline_s <= 0:
            raise ConfigurationError(
                f"worker_deadline_s must be > 0, got {self.worker_deadline_s}"
            )
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ConfigurationError(
                f"memory_budget_mb must be > 0 or None, got "
                f"{self.memory_budget_mb}"
            )


class KernelServer:
    """Asyncio NDJSON front-end over one :class:`CompileService`."""

    def __init__(
        self,
        service: Optional[CompileService] = None,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.service = service or CompileService(
            ServiceConfig(admission_threshold=2)
        )
        overload = self.config.overload
        self.overload = (
            overload if overload is not None and overload.enabled else None
        )
        self.brownout = (
            self.overload.controller() if self.overload is not None else None
        )
        self.queue = FairPriorityQueue(
            caps=self.overload.caps() if self.overload is not None else None
        )
        if self.brownout is not None:
            # Every dequeue's queue wait feeds the hysteresis EWMA; the
            # observer runs on worker threads after the queue lock drops.
            self.queue.wait_observer = (
                lambda wait_s: self.brownout.observe(1e3 * wait_s)
            )
        self.pool = WorkerPool(self.config.workers, queue=self.queue)
        # Warmup traffic (service.warmup) schedules through the same
        # pool, so it can never starve interactive requests.
        self.service.attach_worker_pool(self.pool)
        self.quotas = QuotaManager(self.config.quota)
        self.isolation = None
        if self.config.isolation == "process":
            from repro.serve.isolation import ProcessIsolation

            cache_dir = self.service.config.cache_dir
            self.isolation = ProcessIsolation(
                workers=self.config.workers,
                deadline_s=self.config.worker_deadline_s,
                memory_budget_mb=self.config.memory_budget_mb,
                poison_threshold=self.config.poison_threshold,
                state_path=(
                    cache_dir / "poison-keys.json"
                    if cache_dir is not None
                    else None
                ),
            )
            self.service.set_compile_fn(self.isolation.compile)
        self.journal = None
        self._replay_entries: list = []
        if self.config.journal_dir is not None:
            from repro.serve.journal import RequestJournal

            self.journal = RequestJournal(self.config.journal_dir)
            self._replay_entries = self.journal.pending()
        self._replay_remaining = len(self._replay_entries)
        self._replay_task: Optional[asyncio.Task] = None
        self.started_at = time.monotonic()
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "responses": 0,
            "errors": 0,
            "protocol_errors": 0,
            "quota_rejected": 0,
            "drain_rejected": 0,
            "journaled": 0,
            "journal_dropped": 0,
            "replayed": 0,
            "replay_failed": 0,
            # Overload protection.  All zero (and the mechanisms inert)
            # unless ServeConfig.overload is set.
            "overload_rejected": 0,
            "overload_shed": 0,
            "deadline_expired_queue": 0,
            "deadline_expired_dispatch": 0,
            "brownout_rejected": 0,
            "brownout_warm_served": 0,
        }
        self.op_counts: Dict[str, int] = {}
        self.priority_counts: Dict[str, int] = {}
        self._draining = False
        self._stopping = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Address] = None
        self._writers: set = set()
        self._stop_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Optional[Address]:
        """Where the server listens (available after :meth:`start`)."""
        return self._address

    async def start(self) -> Address:
        if self._server is not None:
            raise ConfigurationError("server is already started")
        if self.config.socket_path is not None:
            _clear_stale_unix_socket(self.config.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.socket_path,
                limit=MAX_FRAME_BYTES + 1,
            )
            self._address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_FRAME_BYTES + 1,
            )
            sock = self._server.sockets[0].getsockname()
            self._address = (sock[0], sock[1])
        if self._replay_entries:
            # Requests journaled by a killed predecessor: re-dispatch
            # them concurrently through the normal blocking path.  The
            # content-addressed cache makes re-running already-finished
            # work a hit, so replay is exactly-once per kernel artifact.
            self._replay_task = asyncio.get_running_loop().create_task(
                self._replay_journal()
            )
        return self._address

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` request) finishes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self, drain: bool = True) -> None:
        """Stop the daemon.

        ``drain=True`` (the default, and the graceful path): refuse new
        requests, answer everything queued or in flight, then close.
        ``drain=False`` abandons queued jobs (their futures cancel) —
        only for tests and emergencies."""
        if self._stopping:
            # A concurrent stop (shutdown op racing an operator signal)
            # owns the teardown; just wait for it to finish.
            await self._stopped.wait()
            return
        self._stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                pass
        # The pool drain blocks; keep the event loop responsive so the
        # in-flight handlers can still write their responses.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None,
            lambda: self.pool.shutdown(
                drain=drain, timeout=self.config.drain_timeout_s
            ),
        )
        for writer in list(self._writers):
            writer.close()
        if self._replay_task is not None and not self._replay_task.done():
            self._replay_task.cancel()
        if self.isolation is not None:
            await loop.run_in_executor(None, self.isolation.close)
        if self.journal is not None:
            self.journal.close()
        self._stopped.set()

    def _request_stop(self, drain: bool = True) -> None:
        if self._stop_task is None or self._stop_task.done():
            self._stop_task = asyncio.get_running_loop().create_task(
                self.stop(drain=drain)
            )

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        # Truncated trailing frame (peer vanished mid-line).
                        self.counters["protocol_errors"] += 1
                    break
                except asyncio.LimitOverrunError:
                    # Oversized frame: answer structurally, then drop the
                    # connection — an NDJSON stream cannot resynchronise.
                    self.counters["protocol_errors"] += 1
                    await self._send(
                        writer,
                        Response.failure(
                            None,
                            ProtocolError(
                                f"frame exceeds the {MAX_FRAME_BYTES}-byte limit"
                            ),
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line.strip():
                    continue
                response = await self._serve_one(line)
                try:
                    await self._send(writer, response)
                except (ConnectionResetError, BrokenPipeError):
                    break
                if self._should_stop_after():
                    self._request_stop(drain=True)
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, response: Response) -> None:
        writer.write(response.encode())
        await writer.drain()
        self.counters["responses"] += 1

    def _should_stop_after(self) -> bool:
        limit = self.config.max_requests
        return limit is not None and self.counters["requests"] >= limit

    # -- request dispatch ----------------------------------------------------

    async def _serve_one(self, line: bytes) -> Response:
        received = time.perf_counter()
        received_mono = time.monotonic()
        try:
            request = Request.decode(line)
        except ProtocolError as exc:
            self.counters["protocol_errors"] += 1
            return Response.failure(None, exc)
        self.counters["requests"] += 1
        self.op_counts[request.op] = self.op_counts.get(request.op, 0) + 1
        self.priority_counts[request.priority] = (
            self.priority_counts.get(request.priority, 0) + 1
        )
        meta: Dict[str, Any] = {
            "op": request.op,
            "tenant": request.tenant,
            "priority": request.priority,
        }
        if self._draining and request.op not in ("ping", "stats", "health"):
            self.counters["drain_rejected"] += 1
            return Response.failure(
                request.id,
                ServerDrainingError(
                    "server is draining; queued work completes but no new "
                    "requests are accepted"
                ),
                meta,
            )
        cost = DEFAULT_COSTS.get(request.op, 1.0)
        if not self.quotas.try_acquire(request.tenant, cost):
            self.counters["quota_rejected"] += 1
            return Response.failure(
                request.id,
                QuotaExceededError(
                    f"tenant {request.tenant!r} exhausted its token bucket "
                    f"(cost {cost}); retry after refill"
                ),
                meta,
            )
        # End-to-end deadline: the request's own budget, or the daemon's
        # configured default; anchored at receipt on the monotonic clock
        # the queue sheds against.
        deadline_ms = request.deadline_ms
        if deadline_ms is None and self.overload is not None:
            deadline_ms = self.overload.deadline_default_ms
        deadline_at_s = (
            overload_mod.deadline_at(received_mono, deadline_ms)
            if deadline_ms is not None
            else None
        )
        if deadline_ms is not None:
            meta["deadline_ms"] = deadline_ms
        if self.brownout is not None:
            # An empty queue is a zero-wait observation: a flood that
            # stopped entirely still lets the EWMA decay and the daemon
            # recover even though nothing is being dequeued.
            if len(self.queue) == 0:
                self.brownout.idle()
            if (
                self.brownout.state == BROWNOUT
                and request.op in ("compile", "run", "tune", "verify", "warmup")
            ):
                if self._brownout_serves(request):
                    self.counters["brownout_warm_served"] += 1
                else:
                    self.counters["brownout_rejected"] += 1
                    return Response.failure(
                        request.id,
                        DegradedModeError(
                            "daemon is in brownout (sustained queue-wait "
                            f"EWMA {self.brownout.ewma_ms:.0f} ms >= "
                            f"{self.brownout.enter_ms:g} ms); only cached "
                            "kernels and read-only ops are served until "
                            "the backlog drains",
                            retry_after_s=self.queue.retry_after_s(),
                        ),
                        meta,
                    )
        lsn = None
        if self.journal is not None and request.op in JOURNALED_OPS:
            # Write-ahead: the request is durable *before* it runs, so a
            # daemon killed mid-job replays it on the next boot.  The
            # completion tombstone lands before the response is sent —
            # an acknowledged request is therefore never replayed as
            # pending *and* never lost.
            lsn = self.journal.record_accepted(request.to_dict())
            if lsn is None:
                self.counters["journal_dropped"] += 1
            else:
                self.counters["journaled"] += 1
        try:
            if request.op == "ping":
                result = self._op_ping()
            elif request.op == "stats":
                result = self._op_stats()
            elif request.op == "health":
                result = self._op_health()
            elif request.op == "shutdown":
                result = {"draining": bool(request.params.get("drain", True))}
                self._request_stop(drain=bool(request.params.get("drain", True)))
            else:
                result = await self._dispatch_blocking(
                    request, meta, received, deadline_at_s=deadline_at_s
                )
            if lsn is not None:
                self.journal.record_completed(lsn, ok=True)
            elapsed_ms = 1e3 * (time.perf_counter() - received)
            meta["server_ms"] = round(elapsed_ms, 3)
            return Response(id=request.id, ok=True, result=result, meta=meta)
        except BaseException as exc:  # answered, never crashes the daemon
            # A deterministic failure is as answered as a success: mark
            # it completed so restart does not replay a poison pill.
            if lsn is not None:
                self.journal.record_completed(lsn, ok=False)
            self.counters["errors"] += 1
            if isinstance(exc, OverloadError):
                self.counters[
                    "overload_shed" if exc.shed else "overload_rejected"
                ] += 1
            elif isinstance(exc, DeadlineExceededError):
                self.counters[
                    "deadline_expired_dispatch"
                    if exc.phase == "dispatch"
                    else "deadline_expired_queue"
                ] += 1
            return Response.failure(request.id, exc, meta)

    # -- journal replay ------------------------------------------------------

    async def _replay_journal(self) -> None:
        entries, self._replay_entries = self._replay_entries, []
        await asyncio.gather(
            *(self._replay_one(lsn, body) for lsn, body in entries),
            return_exceptions=True,
        )

    async def _replay_one(self, lsn: int, body: Dict[str, Any]) -> None:
        ok = False
        try:
            try:
                request = Request.from_dict(body)
            except ProtocolError:
                # Journaled by a newer/older daemon, or hand-edited:
                # tombstone it so it cannot wedge every future boot.
                self.counters["replay_failed"] += 1
                return
            meta: Dict[str, Any] = {
                "op": request.op,
                "tenant": request.tenant,
                "priority": request.priority,
                "replayed": True,
            }
            self.counters["replayed"] += 1
            try:
                await self._dispatch_blocking(
                    request, meta, time.perf_counter()
                )
                ok = True
            except BaseException:
                # Failure answers the replay too (PoisonedKernelError,
                # CompileTimeout, …) — at-least-once ends here, never in
                # a retry storm.
                self.counters["replay_failed"] += 1
        finally:
            if self.journal is not None:
                self.journal.record_completed(lsn, ok=ok)
            self._replay_remaining -= 1

    async def _dispatch_blocking(
        self,
        request: Request,
        meta: Dict[str, Any],
        received: float,
        deadline_at_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        handler = {
            "compile": self._op_compile,
            "run": self._op_run,
            "tune": self._op_tune,
            "verify": self._op_verify,
            "warmup": self._op_warmup,
        }[request.op]
        self._inflight += 1
        self._idle.clear()
        try:
            queued_at = time.perf_counter()

            def job(params=request.params):
                budget_s = None
                if deadline_at_s is not None:
                    # The queue already sheds entries that expire while
                    # waiting; this catches the narrow race where the
                    # budget runs out between that check and the worker
                    # actually starting.
                    budget_s = overload_mod.remaining_s(
                        deadline_at_s, time.monotonic()
                    )
                    if budget_s is not None and budget_s <= 0.0:
                        raise DeadlineExceededError(
                            f"deadline ({meta.get('deadline_ms', 0)} ms) "
                            "expired at dispatch; job not started",
                            deadline_ms=float(meta.get("deadline_ms") or 0.0),
                            phase="dispatch",
                        )
                started = time.perf_counter()
                result = handler(params, budget_s=budget_s)
                result["_exec_ms"] = round(1e3 * (time.perf_counter() - started), 3)
                result["_queue_ms"] = round(1e3 * (started - queued_at), 3)
                return result

            if request.op == "warmup":
                # Warmup orchestrates: service.warmup() submits one job
                # per kernel to the priority pool and waits for them all.
                # Running the orchestrator itself on that pool would
                # deadlock a one-worker daemon, so it runs on asyncio's
                # default executor; only the per-kernel compiles go
                # through the fair queue (at warmup priority).
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(None, job)
            else:
                future = self.pool.submit(
                    job,
                    priority=request.priority,
                    tenant=request.tenant,
                    deadline_at=deadline_at_s,
                )
                result = await asyncio.wrap_future(future)
            meta["queue_ms"] = result.pop("_queue_ms")
            meta["exec_ms"] = result.pop("_exec_ms")
            source = result.get("source")
            if source is not None:
                meta["source"] = source
            return result
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _brownout_serves(self, request: Request) -> bool:
        """Whether a kernel op is warm enough to serve during brownout.

        Brownout exists to stop *new compilation work* from piling onto
        an already-drowning queue; a content-addressed cache hit costs
        microseconds and is still served.  ``tune``/``warmup`` always
        generate fresh compiles, so they are always fast-failed."""
        if request.op in ("tune", "warmup"):
            return False
        try:
            spec, options, arch = protocol.spec_and_options(request.params)
        except ProtocolError:
            # Malformed params: admit it so the normal path can answer
            # with the real, more useful protocol error.
            return True
        shape_hint = protocol.shape_hint(request.params)
        if request.op == "verify":
            # Mirror _op_verify's lookup exactly (no shape hint there).
            options = options.with_(verify=False)
            shape_hint = None
        try:
            return self.service.is_cached(
                spec, arch, options, shape_hint=shape_hint
            )
        except Exception:
            return False

    # -- operations (run on worker threads) ----------------------------------

    def _op_ping(self) -> Dict[str, Any]:
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "draining": self._draining,
        }

    def _op_stats(self) -> Dict[str, Any]:
        return {"server": self.stats(), "service": self.service.stats()}

    def _op_health(self) -> Dict[str, Any]:
        """Liveness/readiness surface for orchestrators and probes.

        *Alive* is implied by any answer at all.  ``ready`` means the
        daemon will accept new kernel work right now — false while
        draining or in brownout — so load balancers can stop routing to
        it before tenants see structured rejections."""
        queue_stats = self.queue.stats()
        in_brownout = (
            self.brownout is not None and self.brownout.state == BROWNOUT
        )
        if self._draining:
            state = "draining"
        elif in_brownout:
            state = "brownout"
        else:
            state = "healthy"
        health: Dict[str, Any] = {
            "state": state,
            "ready": not self._draining and not in_brownout,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue": queue_stats,
            "retry_after_s": queue_stats["retry_after_s"],
            "workers": {
                "configured": self.pool.workers,
                "active": self.pool.stats()["active"],
            },
            "overload": {
                name: self.counters[name]
                for name in (
                    "overload_rejected",
                    "overload_shed",
                    "deadline_expired_queue",
                    "deadline_expired_dispatch",
                    "brownout_rejected",
                    "brownout_warm_served",
                )
            },
            "brownout": (
                self.brownout.stats() if self.brownout is not None else None
            ),
            "isolation": (
                self.isolation.stats()
                if self.isolation is not None
                else {"mode": "thread"}
            ),
            "replay_pending": self._replay_remaining,
        }
        return health

    def _op_compile(
        self, params: Dict[str, Any], budget_s: Optional[float] = None
    ) -> Dict[str, Any]:
        spec, options, arch = protocol.spec_and_options(params)
        program, source = self.service.get_program_with_source(
            spec,
            arch,
            options,
            timeout_s=overload_mod.merge_timeout(params.get("timeout"), budget_s),
            shape_hint=protocol.shape_hint(params),
        )
        return {
            "key": self.service.reconciled_key(spec, arch, options),
            "variant": program.options.variant_name(),
            "source": source,
            "codegen_ms": round(1e3 * program.codegen_seconds, 3),
            "spm_plan": program.plan.describe(),
            "verified": program.verification is not None,
        }

    def _op_run(
        self, params: Dict[str, Any], budget_s: Optional[float] = None
    ) -> Dict[str, Any]:
        import numpy as np

        from repro.runtime.executor import run_gemm

        spec, options, arch = protocol.spec_and_options(params)
        M = int(params.get("M", 64))
        N = int(params.get("N", 64))
        K = int(params.get("K", 32))
        seed = int(params.get("seed", 0))
        alpha = float(params.get("alpha", 1.0))
        program, source = self.service.get_program_with_source(
            spec,
            arch,
            options,
            timeout_s=overload_mod.merge_timeout(params.get("timeout"), budget_s),
            shape_hint=protocol.shape_hint(params),
        )
        rng = np.random.default_rng(seed)
        batch = int(params.get("batch_count", 4)) if spec.is_batched else None
        lead = (batch,) if batch else ()
        A = rng.standard_normal(lead + ((K, M) if spec.trans_a else (M, K)))
        B = rng.standard_normal(lead + ((N, K) if spec.trans_b else (K, N)))
        C = np.zeros(lead + (M, N))
        C, report = run_gemm(
            program, A, B, C, alpha=alpha, beta=0.0,
            guarded=bool(params.get("guarded", False)),
        )
        A_eff = A.swapaxes(-1, -2) if spec.trans_a else A
        B_eff = B.swapaxes(-1, -2) if spec.trans_b else B
        max_error = float(np.abs(C - alpha * (A_eff @ B_eff)).max())
        result = {
            "key": self.service.reconciled_key(spec, arch, options),
            "source": source,
            "gflops": report.gflops,
            "simulated_ms": 1e3 * report.elapsed_seconds,
            "max_error": max_error,
            "ok": max_error < 1e-8,
        }
        for stat in ("dma_retries", "rma_retries", "lost_replies"):
            if stat in report.stats:
                result[stat] = int(report.stats[stat])
        return result

    def _op_tune(
        self, params: Dict[str, Any], budget_s: Optional[float] = None
    ) -> Dict[str, Any]:
        from repro import api

        spec, options, arch = protocol.spec_and_options(params)
        shape = protocol.shape_hint(params) or (1024, 1024, 1024)
        record = api.tune(
            spec,
            shape=shape,
            arch=arch,
            seed=int(params.get("seed", 0)),
            budget=int(params.get("budget", 8)),
            options=options if params.get("tile") or params.get("fusion") else None,
            service=self.service,
        )
        row = record.describe()
        return {
            "shape_class": row["shape_class"],
            "config": row["config"],
            "best_gflops": row["best_gflops"],
            "improvement_pct": row["improvement_pct"],
            "key": row["key"],
        }

    def _op_verify(
        self, params: Dict[str, Any], budget_s: Optional[float] = None
    ) -> Dict[str, Any]:
        from repro.verify import verify_program

        spec, options, arch = protocol.spec_and_options(params)
        program, source = self.service.get_program_with_source(
            spec, arch, options.with_(verify=False),
            timeout_s=overload_mod.merge_timeout(params.get("timeout"), budget_s),
        )
        report = verify_program(program)
        described = report.describe()
        return {
            "key": self.service.reconciled_key(spec, arch, options),
            "source": source,
            "ok": report.ok,
            "checks": len(described.get("checks", [])),
        }

    def _op_warmup(
        self, params: Dict[str, Any], budget_s: Optional[float] = None
    ) -> Dict[str, Any]:
        rows = self.service.warmup()
        compiled = sum(1 for r in rows if r["source"] == "compiled")
        return {
            "kernels": len(rows),
            "compiled": compiled,
            "cached": len(rows) - compiled,
        }

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "address": (
                list(self._address)
                if isinstance(self._address, tuple)
                else self._address
            ),
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "draining": self._draining,
            "counters": dict(self.counters),
            "ops": dict(self.op_counts),
            "priorities": dict(self.priority_counts),
            "pool": self.pool.stats(),
            "quota": self.quotas.stats(),
            "isolation": (
                self.isolation.stats()
                if self.isolation is not None
                else {"mode": "thread"}
            ),
            "journal": (
                {
                    **self.journal.stats(),
                    "replay_pending": self._replay_remaining,
                }
                if self.journal is not None
                else None
            ),
            "overload": (
                {
                    "config": self.overload.describe(),
                    "brownout": (
                        self.brownout.stats()
                        if self.brownout is not None
                        else None
                    ),
                }
                if self.overload is not None
                else None
            ),
        }


# ---------------------------------------------------------------------------
# Background-thread harness (tests, load generator, embedders)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A :class:`KernelServer` running its event loop on a daemon thread.

    ``address`` is valid as soon as the constructor-issuing helper
    returns; ``stop()`` drains and joins.  Context-manager use stops
    with a graceful drain on exit.
    """

    def __init__(self, server: KernelServer) -> None:
        self.server = server
        self.address: Optional[Address] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        ready = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self.loop = loop
            try:
                self.address = loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_until_complete(self.server.serve_until_stopped())
                # A stop() queued by another thread may still be pending
                # (it just awaits the already-set stopped event) — let it
                # finish so no task is destroyed with work outstanding.
                pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
                if pending:
                    loop.run_until_complete(
                        asyncio.wait(pending, timeout=5.0)
                    )
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="swgemm-serve", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=timeout):
            raise ServeError("server failed to start within the timeout")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if self.loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain), self.loop
            )
            try:
                future.result(timeout=timeout)
            except (
                asyncio.TimeoutError,
                # Distinct from builtin TimeoutError before Python 3.11.
                concurrent.futures.TimeoutError,
                RuntimeError,
                TimeoutError,
            ):
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    service: Optional[CompileService] = None,
    config: Optional[ServeConfig] = None,
    timeout: float = 10.0,
) -> ServerHandle:
    """Boot a daemon on a background thread; returns its handle."""
    return ServerHandle(KernelServer(service, config)).start(timeout=timeout)
