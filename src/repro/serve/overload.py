"""Overload protection for the serving daemon.

The crash-safety layers (worker isolation, the write-ahead journal)
protect the daemon from *failure*; this module protects it from
*success* — a traffic spike that outruns the worker pool.  Three
mechanisms compose, all **off by default** (an unconfigured daemon is
byte-identical to the pre-overload wire behaviour):

* **Bounded queues** — :class:`OverloadConfig.max_queue_depth` derives
  per-class admission watermarks (``warmup < batch < interactive``) for
  the :class:`~repro.serve.queue.FairPriorityQueue`; arrivals beyond a
  watermark shed queued lower-priority work first and are otherwise
  rejected with a structured :class:`~repro.errors.OverloadError`
  carrying a ``retry_after_s`` hint computed from the observed drain
  rate.

* **Deadline propagation** — requests carry a ``deadline_ms`` budget;
  the pure helpers here (:func:`deadline_at`, :func:`remaining_s`,
  :func:`is_expired`, :func:`merge_timeout`) are the single source of
  budget arithmetic, shared by the queue (shed-before-dispatch), the
  dispatch path (budget → worker ``timeout_s``) and the property tests.

* **Brownout** — :class:`BrownoutController`, a two-state hysteresis
  machine over an EWMA of queue-wait time.  Under sustained overload it
  flips to ``brownout``: cache hits and read-only ops keep flowing,
  compile misses fast-fail with
  :class:`~repro.errors.DegradedModeError` — the content-addressed
  cache becomes the degraded serving tier, exactly like an inference
  server shedding cold requests while serving warm ones.  The clock is
  injectable so tests and the benchmark can drive transitions
  deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError

#: Fraction of ``max_queue_depth`` each priority class may see the
#: queue fill to before its arrivals stop being admitted.  Interactive
#: traffic owns the full depth; batch is refused earlier; warmup
#: earliest — so as pressure builds, the queue sheds load classes in
#: reverse priority order long before user-facing traffic notices.
CLASS_WATERMARKS: Dict[str, float] = {
    "interactive": 1.0,
    "batch": 2.0 / 3.0,
    "warmup": 1.0 / 3.0,
}


def class_caps(max_depth: int) -> Dict[str, int]:
    """Per-class admission watermarks derived from one depth knob.

    Every class gets at least one slot, and the ordering
    ``warmup <= batch <= interactive`` always holds.
    """
    if max_depth < 1:
        raise ConfigurationError(
            f"max_queue_depth must be >= 1, got {max_depth}"
        )
    caps = {
        name: max(1, int(max_depth * fraction))
        for name, fraction in CLASS_WATERMARKS.items()
    }
    caps["batch"] = min(caps["batch"], caps["interactive"])
    caps["warmup"] = min(caps["warmup"], caps["batch"])
    return caps


# ---------------------------------------------------------------------------
# Deadline-budget arithmetic (pure, property-tested)
# ---------------------------------------------------------------------------


def deadline_at(received_s: float, deadline_ms: float) -> float:
    """Absolute monotonic deadline from a receipt time and a budget."""
    return received_s + deadline_ms / 1e3


def remaining_s(deadline_at_s: Optional[float], now_s: float) -> Optional[float]:
    """Seconds of budget left; never negative; ``None`` when unbounded."""
    if deadline_at_s is None:
        return None
    return max(0.0, deadline_at_s - now_s)


def is_expired(deadline_at_s: Optional[float], now_s: float) -> bool:
    """Whether the budget is gone (unbounded deadlines never expire)."""
    if deadline_at_s is None:
        return False
    return now_s >= deadline_at_s


def merge_timeout(
    timeout_s: Optional[float], budget_s: Optional[float]
) -> Optional[float]:
    """The effective worker deadline: the tighter of an explicit
    per-request ``timeout`` and the remaining end-to-end budget."""
    if timeout_s is None:
        return budget_s
    if budget_s is None:
        return timeout_s
    return min(timeout_s, budget_s)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadConfig:
    """Every overload-protection knob of one daemon.

    All features default to off; an all-default ``OverloadConfig`` is
    equivalent to not configuring one at all.
    """

    #: Queue-depth watermark of the interactive class; batch and warmup
    #: get 2/3 and 1/3 of it (see :func:`class_caps`).  ``None`` leaves
    #: the queue unbounded (the historical behaviour).
    max_queue_depth: Optional[int] = None
    #: End-to-end budget stamped on requests that do not carry their own
    #: ``deadline_ms``; ``None`` means no default deadline.
    deadline_default_ms: Optional[float] = None
    #: EWMA queue-wait threshold that enters brownout; ``None`` disables
    #: the brownout state machine entirely.
    brownout_enter_ms: Optional[float] = None
    #: EWMA queue-wait threshold that exits brownout (must be strictly
    #: below ``brownout_enter_ms``); defaults to half of it.
    brownout_exit_ms: Optional[float] = None
    #: Minimum seconds spent in brownout before an exit is allowed —
    #: the dwell leg of the hysteresis, so a single fast dequeue cannot
    #: flap the daemon back to healthy.
    brownout_dwell_s: float = 2.0
    #: Smoothing factor of the queue-wait EWMA (0 < alpha <= 1).
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1 or None, got "
                f"{self.max_queue_depth}"
            )
        if (
            self.deadline_default_ms is not None
            and self.deadline_default_ms <= 0
        ):
            raise ConfigurationError(
                f"deadline_default_ms must be > 0 or None, got "
                f"{self.deadline_default_ms}"
            )
        if self.brownout_enter_ms is not None and self.brownout_enter_ms <= 0:
            raise ConfigurationError(
                f"brownout_enter_ms must be > 0 or None, got "
                f"{self.brownout_enter_ms}"
            )
        if self.brownout_exit_ms is not None:
            if self.brownout_enter_ms is None:
                raise ConfigurationError(
                    "brownout_exit_ms requires brownout_enter_ms"
                )
            if not 0 < self.brownout_exit_ms < self.brownout_enter_ms:
                raise ConfigurationError(
                    "brownout_exit_ms must be in (0, brownout_enter_ms); "
                    f"got {self.brownout_exit_ms} vs enter "
                    f"{self.brownout_enter_ms}"
                )
        if self.brownout_dwell_s < 0:
            raise ConfigurationError(
                f"brownout_dwell_s must be >= 0, got {self.brownout_dwell_s}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any overload mechanism is actually configured."""
        return (
            self.max_queue_depth is not None
            or self.deadline_default_ms is not None
            or self.brownout_enter_ms is not None
        )

    def caps(self) -> Optional[Dict[str, int]]:
        if self.max_queue_depth is None:
            return None
        return class_caps(self.max_queue_depth)

    def controller(
        self, clock: Callable[[], float] = time.monotonic
    ) -> Optional["BrownoutController"]:
        if self.brownout_enter_ms is None:
            return None
        return BrownoutController(
            enter_ms=self.brownout_enter_ms,
            exit_ms=self.brownout_exit_ms,
            min_dwell_s=self.brownout_dwell_s,
            alpha=self.ewma_alpha,
            clock=clock,
        )

    def describe(self) -> Dict[str, object]:
        return {
            "max_queue_depth": self.max_queue_depth,
            "class_caps": self.caps(),
            "deadline_default_ms": self.deadline_default_ms,
            "brownout_enter_ms": self.brownout_enter_ms,
            "brownout_exit_ms": (
                self.brownout_exit_ms
                if self.brownout_exit_ms is not None
                else (
                    self.brownout_enter_ms / 2.0
                    if self.brownout_enter_ms is not None
                    else None
                )
            ),
            "brownout_dwell_s": self.brownout_dwell_s,
            "ewma_alpha": self.ewma_alpha,
        }


# ---------------------------------------------------------------------------
# Brownout hysteresis
# ---------------------------------------------------------------------------

HEALTHY = "healthy"
BROWNOUT = "brownout"


class BrownoutController:
    """Two-state hysteresis over an EWMA of queue-wait time.

    ``observe(wait_ms)`` feeds one dequeued request's queue wait;
    ``idle()`` feeds a zero (called when the daemon sees the queue
    empty, so a flood that stops entirely still lets the EWMA decay and
    the daemon recover).  Transitions::

        healthy  → brownout   when  ewma >= enter_ms
        brownout → healthy    when  ewma <= exit_ms
                              and at least min_dwell_s elapsed in brownout

    ``exit_ms < enter_ms`` plus the dwell give the hysteresis: the
    controller never flaps on a single observation.  The whole machine
    is a pure function of the observation sequence and the (injectable)
    clock — tests and the benchmark replay it deterministically.

    Thread-safe: ``observe`` arrives from worker threads (the queue's
    ``wait_observer``) while ``idle`` and ``state`` reads come from the
    event loop, so the EWMA read-modify-write and the transition logic
    run under a private lock.
    """

    def __init__(
        self,
        enter_ms: float,
        exit_ms: Optional[float] = None,
        min_dwell_s: float = 2.0,
        alpha: float = 0.3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if enter_ms <= 0:
            raise ConfigurationError(f"enter_ms must be > 0, got {enter_ms}")
        if exit_ms is None:
            exit_ms = enter_ms / 2.0
        if not 0 < exit_ms < enter_ms:
            raise ConfigurationError(
                f"exit_ms must be in (0, enter_ms={enter_ms}), got {exit_ms}"
            )
        if min_dwell_s < 0:
            raise ConfigurationError(
                f"min_dwell_s must be >= 0, got {min_dwell_s}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.enter_ms = enter_ms
        self.exit_ms = exit_ms
        self.min_dwell_s = min_dwell_s
        self.alpha = alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._state = HEALTHY
        self._ewma_ms: Optional[float] = None
        self._entered_at: Optional[float] = None
        self.observations = 0
        self.entered = 0
        self.exited = 0
        #: Bounded transition log (state, monotonic time, ewma at flip).
        self.transitions: List[Dict[str, object]] = []
        self._max_transitions = 64

    @property
    def state(self) -> str:
        return self._state

    @property
    def ewma_ms(self) -> float:
        return self._ewma_ms if self._ewma_ms is not None else 0.0

    def observe(self, wait_ms: float) -> str:
        """Feed one queue-wait sample; returns the (possibly new) state."""
        wait_ms = max(0.0, float(wait_ms))
        with self._lock:
            self.observations += 1
            if self._ewma_ms is None:
                self._ewma_ms = wait_ms
            else:
                self._ewma_ms = (
                    self.alpha * wait_ms + (1.0 - self.alpha) * self._ewma_ms
                )
            return self._transition()

    def idle(self) -> str:
        """A zero-wait observation: the queue was seen empty."""
        return self.observe(0.0)

    def _transition(self) -> str:
        now = self._clock()
        ewma = self.ewma_ms
        if self._state == HEALTHY and ewma >= self.enter_ms:
            self._state = BROWNOUT
            self._entered_at = now
            self.entered += 1
            self._log(now, ewma)
        elif (
            self._state == BROWNOUT
            and ewma <= self.exit_ms
            and self._entered_at is not None
            and now - self._entered_at >= self.min_dwell_s
        ):
            self._state = HEALTHY
            self._entered_at = None
            self.exited += 1
            self._log(now, ewma)
        return self._state

    def _log(self, now: float, ewma: float) -> None:
        if len(self.transitions) < self._max_transitions:
            self.transitions.append(
                {"state": self._state, "at": now, "ewma_ms": round(ewma, 3)}
            )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "ewma_ms": round(self.ewma_ms, 3),
                "enter_ms": self.enter_ms,
                "exit_ms": self.exit_ms,
                "dwell_s": self.min_dwell_s,
                "observations": self.observations,
                "entered": self.entered,
                "exited": self.exited,
                "transitions": list(self.transitions),
            }
