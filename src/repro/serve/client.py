"""Blocking client for the compilation daemon.

A thin, dependency-free socket client speaking the NDJSON protocol:
one request out, one response in, errors surfaced as the structured
exception types the server reported (``QuotaExceededError`` when a
token bucket runs dry, ``ServerDrainingError`` during shutdown,
``ProtocolError`` for malformed traffic, ``ServeError`` otherwise).
``repro.api.connect`` wraps this in the facade.

The client is deliberately synchronous — tenants of the daemon are
benchmark drivers, CI scripts and notebook users, and a blocking call
per request keeps their code trivial; concurrency comes from running
many clients (threads/processes), which is exactly what the load
generator does.
"""

from __future__ import annotations

import random
import socket
import threading
import time
import uuid
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.errors import (
    ClientTimeout,
    DeadlineExceededError,
    DegradedModeError,
    OverloadError,
    PoisonedKernelError,
    ProtocolError,
    QuotaExceededError,
    ServeError,
    ServerDrainingError,
    WorkerCrashError,
)
from repro.serve.protocol import (
    DEFAULT_PRIORITY,
    MAX_FRAME_BYTES,
    Request,
    Response,
)

Address = Union[str, Tuple[str, int]]

#: Server-reported error type → local exception class.  Anything the
#: table does not name comes back as a plain :class:`ServeError`
#: carrying the server-side type name.
_ERROR_TYPES = {
    "QuotaExceededError": QuotaExceededError,
    "ServerDrainingError": ServerDrainingError,
    "ProtocolError": ProtocolError,
    "WorkerCrashError": WorkerCrashError,
    "PoisonedKernelError": PoisonedKernelError,
    "OverloadError": OverloadError,
    "DegradedModeError": DegradedModeError,
    "DeadlineExceededError": DeadlineExceededError,
}

#: Ops safe to resend after a dropped connection: read-only probes plus
#: the kernel verbs, which are content-addressed and therefore
#: idempotent (a resent compile is at worst a cache hit).  ``shutdown``
#: is deliberately absent — resending it could kill a *restarted*
#: daemon.
IDEMPOTENT_OPS = frozenset(
    {"ping", "stats", "health", "compile", "run", "tune", "verify", "warmup"}
)

#: Server rejections that carry a ``retry_after_s`` hint and are worth
#: retrying after waiting it out (the overload clears as the queue
#: drains).  Deadline expiry is deliberately absent: the caller's
#: budget is gone, a retry cannot bring it back.
_RETRYABLE_OVERLOAD = (OverloadError, DegradedModeError)


class RemoteError(ServeError):
    """A server-side failure of any type the client has no class for.

    ``remote_type`` preserves the server's exception type name so
    callers can still dispatch on it."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


def raise_for_error(error: Dict[str, Any]) -> None:
    """Re-raise a response's structured error as a local exception."""
    remote_type = str(error.get("type", "ServeError"))
    message = str(error.get("message", "server reported an error"))
    cls = _ERROR_TYPES.get(remote_type)
    exc: ServeError
    if cls is not None:
        exc = cls(message)
    else:
        exc = RemoteError(remote_type, message)
    # Overload rejections ship the server's drain-rate estimate; carry
    # it onto the local exception so retry loops can honour it.
    retry_after = error.get("retry_after_s")
    if isinstance(retry_after, (int, float)) and not isinstance(
        retry_after, bool
    ):
        exc.retry_after_s = float(retry_after)
    raise exc


class Client:
    """One connection to a running ``swgemm serve`` daemon.

    Thread-safe: a lock serialises request/response pairs, so one
    client can be shared across threads (each request still blocks its
    caller).  Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        address: Address,
        tenant: str = "default",
        timeout: Optional[float] = 30.0,
        retry: bool = True,
        retry_backoff_s: float = 0.05,
        overload_retries: int = 0,
        overload_retry_budget_s: float = 10.0,
        deadline_ms: Optional[float] = None,
        _sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.address = address
        self.tenant = tenant
        self.timeout = timeout
        #: retry idempotent ops once after a dropped connection (a
        #: worker-recycle or daemon-restart blip); ``shutdown`` and any
        #: op outside :data:`IDEMPOTENT_OPS` never retries.
        self.retry = retry
        self.retry_backoff_s = retry_backoff_s
        #: How many overload/degraded rejections :meth:`request` waits
        #: out (honouring the server's ``retry_after_s`` hint) before
        #: surfacing the error.  0 — the default — surfaces immediately.
        self.overload_retries = overload_retries
        #: Total seconds :meth:`request` may spend sleeping on
        #: ``retry_after_s`` hints across *all* its overload retries —
        #: the per-client retry budget that stops a polite client from
        #: waiting forever on a drowning daemon.
        self.overload_retry_budget_s = overload_retry_budget_s
        #: End-to-end budget attached to every request that does not
        #: set its own; ``None`` sends no deadline (the historical
        #: wire format, byte-identical).
        self.deadline_ms = deadline_ms
        self._sleep = _sleep
        self._rng = random.Random()
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self.requests_sent = 0
        self.retries = 0
        self.overload_retried = 0
        self._closed = False
        self._connect()

    def _connect(self) -> None:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: Any = self.address
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = tuple(self.address)
        sock.settimeout(self.timeout)
        try:
            sock.connect(target)
        except OSError as exc:
            sock.close()
            raise ServeError(
                f"cannot connect to compilation daemon at {self.address!r}: {exc}"
            ) from exc
        self._sock = sock
        self._rfile = sock.makefile("rb")

    # -- transport -----------------------------------------------------------

    def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        priority: str = DEFAULT_PRIORITY,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Send one request; return the result dict or raise its error.

        With ``overload_retries`` configured, overload/brownout
        rejections are waited out (sleeping the server's
        ``retry_after_s`` hint, clipped to what is left of the
        per-client ``overload_retry_budget_s``) and resent; the last
        rejection surfaces once retries or budget run out."""
        budget_s = self.overload_retry_budget_s
        for attempt in range(self.overload_retries + 1):
            response = self.request_response(
                op, params, priority=priority, deadline_ms=deadline_ms
            )
            if response.ok:
                return (
                    response.result
                    if isinstance(response.result, dict)
                    else {}
                )
            try:
                raise_for_error(response.error or {})
            except _RETRYABLE_OVERLOAD as exc:
                wait_s = min(
                    getattr(exc, "retry_after_s", 1.0), max(0.0, budget_s)
                )
                if attempt >= self.overload_retries or wait_s <= 0.0:
                    raise
                budget_s -= wait_s
                self.overload_retried += 1
                self._sleep(wait_s)
        raise ServeError("unreachable: overload retry loop exited")

    def request_response(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        priority: str = DEFAULT_PRIORITY,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        """Like :meth:`request` but hands back the raw :class:`Response`
        (the load generator wants meta and errors without exceptions)."""
        if deadline_ms is None:
            deadline_ms = self.deadline_ms
        request = Request(
            id=uuid.uuid4().hex[:12],
            op=op,
            tenant=self.tenant,
            priority=priority,
            params=dict(params or {}),
            deadline_ms=deadline_ms,
        )
        attempts = 2 if (self.retry and op in IDEMPOTENT_OPS) else 1
        with self._lock:
            if self._closed:
                raise ServeError("client is closed")
            line = b""
            for attempt in range(attempts):
                try:
                    if self._sock is None or self._rfile is None:
                        # Reconnect after a loss the previous request
                        # tore down (worker recycle, daemon restart).
                        self._connect()
                    self._sock.sendall(request.encode())
                    line = self._rfile.readline(MAX_FRAME_BYTES + 1)
                    if not line:
                        raise ConnectionResetError(
                            "daemon closed the connection without responding"
                        )
                    break
                except socket.timeout as exc:
                    # A timeout is NOT a dropped connection: the daemon
                    # most likely accepted the request and is still
                    # working on it.  Blindly resending would double the
                    # server's work exactly when it is slowest — the
                    # classic retry-storm amplifier — so surface a
                    # distinct error and let the caller decide.  The
                    # stream is desynchronised (a late response would be
                    # mismatched to the next request), so the connection
                    # itself must still be torn down.
                    self._close_unlocked()
                    raise ClientTimeout(
                        f"no response from daemon within "
                        f"{self.timeout}s for op {op!r}; the request may "
                        "still be executing server-side (not retried)",
                        timeout_s=float(self.timeout or 0.0),
                    ) from exc
                except OSError as exc:
                    # The lock is held here; close() would re-take it
                    # and deadlock, so tear the connection down
                    # lock-free.  Idempotent ops get one resend with
                    # jittered backoff; anything else surfaces the loss.
                    self._close_unlocked()
                    if attempt + 1 >= attempts:
                        raise ServeError(
                            f"connection to daemon lost: {exc}"
                        ) from exc
                    self.retries += 1
                    self._sleep(
                        self.retry_backoff_s * (0.5 + self._rng.random())
                    )
            self.requests_sent += 1
        response = Response.decode(line)
        if response.id not in (request.id, None):
            raise ProtocolError(
                f"response id {response.id!r} does not match request "
                f"{request.id!r}"
            )
        return response

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def health(self) -> Dict[str, Any]:
        """Readiness probe: state, queue depths, overload counters."""
        return self.request("health")

    def compile(
        self, params: Optional[Dict[str, Any]] = None,
        priority: str = DEFAULT_PRIORITY, **kw: Any,
    ) -> Dict[str, Any]:
        return self.request("compile", {**(params or {}), **kw}, priority)

    def run(
        self, params: Optional[Dict[str, Any]] = None,
        priority: str = DEFAULT_PRIORITY, **kw: Any,
    ) -> Dict[str, Any]:
        return self.request("run", {**(params or {}), **kw}, priority)

    def tune(
        self, params: Optional[Dict[str, Any]] = None,
        priority: str = "batch", **kw: Any,
    ) -> Dict[str, Any]:
        return self.request("tune", {**(params or {}), **kw}, priority)

    def verify(
        self, params: Optional[Dict[str, Any]] = None,
        priority: str = DEFAULT_PRIORITY, **kw: Any,
    ) -> Dict[str, Any]:
        return self.request("verify", {**(params or {}), **kw}, priority)

    def warmup(self) -> Dict[str, Any]:
        return self.request("warmup", priority="warmup")

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request("shutdown", {"drain": drain})

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._close_unlocked()

    def _close_unlocked(self) -> None:
        """Close without touching ``self._lock`` — the lock is *not*
        reentrant, so error paths inside ``request_response`` (which
        already hold it) must use this instead of :meth:`close`."""
        rfile, sock = self._rfile, self._sock
        self._rfile = None
        self._sock = None
        for closable in (rfile, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
