"""Deterministic fault-injection plane and recovery policies.

The simulator of §§4-6 assumes a perfect machine: every ``dma_iget`` /
``dma_iput`` reply lands, every ``rma_row_ibcast`` / ``rma_col_ibcast``
delivers bit-exact payloads, every rank of the multi-cluster driver
survives to the gather.  Real Sunway-scale runs treat stragglers,
transfer faults and corrupted artifacts as routine, so this module adds
the missing half of the robustness story:

* :class:`FaultPolicy` — *what* to inject and at which rates: transient
  DMA/RMA/link failures, payload corruption, dropped reply counters,
  latency spikes, artifact corruption, dead and straggler ranks.  The
  policy is a frozen dataclass so it can ride on
  :class:`~repro.core.options.CompilerOptions` (and therefore on every
  entry point — executor, simulator, multi-cluster driver, compile
  service, CLI) without breaking hashing or caching.
* :class:`RetryPolicy` — *how* the stack recovers: bounded retries with
  exponential backoff, charged in simulated time so degraded runs show
  up in the measured schedule.
* :class:`FaultInjector` — the seed-driven random source.  Every
  subsystem draws from its own named stream (``fork``), so two runs with
  the same seed inject the identical fault sequence regardless of how
  other subsystems consumed randomness — the chaos suite relies on this
  to assert bit-exact, reproducible results under ≥5 % fault rates.
* :func:`tile_checksum` — the end-to-end integrity check.  DMA records a
  checksum when a tile lands in SPM; the RMA engine re-verifies it
  before broadcasting and after every receiver copy, turning silent
  corruption into either a transparent retry or a diagnostic
  :class:`~repro.errors.DataIntegrityError`.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FaultPolicy",
    "RetryPolicy",
    "FaultInjector",
    "tile_checksum",
]


def tile_checksum(view: np.ndarray) -> int:
    """CRC32 over the raw bytes of a tile (or tile prefix)."""
    return zlib.crc32(np.ascontiguousarray(view).tobytes())


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPolicy:
    """What the injection plane does to one run.

    All rates are per-message probabilities.  ``enabled=False`` (the
    default) turns every injection site off — the watchdog and checksum
    *recovery* machinery stays available regardless, because a policy
    only decides what to break, never what to detect.
    """

    #: Master switch for every probabilistic injection site.
    enabled: bool = False
    #: Seed of the deterministic fault streams.
    seed: int = 0
    #: Transient failure of one DMA message (retried by the engine).
    dma_fault_rate: float = 0.0
    #: Transient failure of one RMA broadcast (retried by the engine).
    rma_fault_rate: float = 0.0
    #: Transient failure of one inter-cluster link transfer.
    comm_fault_rate: float = 0.0
    #: Payload corruption of a delivered tile.  With ``checksums`` on the
    #: engines detect and repair it; without, it silently lands — exactly
    #: the failure mode the reproduction must *demonstrate* detecting.
    corruption_rate: float = 0.0
    #: A transfer completes but its reply counter never increments; the
    #: executor watchdog turns the resulting stall into a diagnostic
    #: :class:`~repro.errors.SynchronizationError`.
    reply_drop_rate: float = 0.0
    #: Probability that one transfer takes ``latency_spike_factor``× its
    #: modelled time (congestion / ECC-retry spikes).
    latency_spike_rate: float = 0.0
    latency_spike_factor: float = 8.0
    #: Probability that an artifact-store write lands truncated on disk.
    artifact_corruption_rate: float = 0.0
    #: Probability that one isolated compile hard-crashes its worker
    #: subprocess (``SystemExit`` mid-codegen — the segfault-equivalent
    #: the serving daemon's process isolation must contain).
    compile_crash_rate: float = 0.0
    #: Probability that one isolated compile hangs for
    #: ``compile_hang_s`` wall-clock seconds before doing any work, so
    #: the daemon's per-job deadline must hard-kill the worker.
    compile_hang_rate: float = 0.0
    compile_hang_s: float = 30.0
    #: Ranks of the multi-cluster driver that fail before computing; the
    #: driver reassigns their C-blocks to healthy ranks (degraded mode).
    dead_ranks: Tuple[int, ...] = ()
    #: Ranks whose compute runs ``straggler_factor``× slower.
    straggler_ranks: Tuple[int, ...] = ()
    straggler_factor: float = 4.0
    #: End-to-end tile checksums across DMA→RMA hops.
    checksums: bool = False
    #: Virtual seconds a reply wait may stall while the rest of the mesh
    #: advances before the executor watchdog raises (0 disables the
    #: timeout path; the lost-reply detector still fires).
    watchdog_timeout_s: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "dma_fault_rate",
            "rma_fault_rate",
            "comm_fault_rate",
            "corruption_rate",
            "reply_drop_rate",
            "latency_spike_rate",
            "artifact_corruption_rate",
            "compile_crash_rate",
            "compile_hang_rate",
        ):
            _check_rate(name, getattr(self, name))
        if self.compile_hang_s < 0:
            raise ConfigurationError(
                f"compile_hang_s must be >= 0, got {self.compile_hang_s}"
            )
        if self.latency_spike_factor < 1.0:
            raise ConfigurationError(
                f"latency_spike_factor must be >= 1, got {self.latency_spike_factor}"
            )
        if self.straggler_factor < 1.0:
            raise ConfigurationError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.watchdog_timeout_s < 0:
            raise ConfigurationError(
                f"watchdog_timeout_s must be >= 0, got {self.watchdog_timeout_s}"
            )
        for name in ("dead_ranks", "straggler_ranks"):
            ranks = getattr(self, name)
            if not isinstance(ranks, tuple):
                # Lists are convenient at call sites but must not leak into
                # the frozen (hashable) policy.
                object.__setattr__(self, name, tuple(ranks))

    @staticmethod
    def chaos(seed: int = 0, rate: float = 0.05) -> "FaultPolicy":
        """The documented chaos profile: ``rate`` transient faults on every
        transfer plane, the same rate of latency spikes, half of it as
        payload corruption — with checksums on so every corruption is
        repaired.  Bit-exact results under this policy are the chaos
        suite's acceptance bar."""
        return FaultPolicy(
            enabled=True,
            seed=seed,
            dma_fault_rate=rate,
            rma_fault_rate=rate,
            comm_fault_rate=rate,
            corruption_rate=rate / 2,
            latency_spike_rate=rate,
            checksums=True,
        )

    def with_(self, **overrides) -> "FaultPolicy":
        from dataclasses import replace

        return replace(self, **overrides)

    # -- wire format (the serving protocol ships policies per request) ------

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        data = asdict(self)
        data["dead_ranks"] = list(self.dead_ranks)
        data["straggler_ranks"] = list(self.straggler_ranks)
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultPolicy":
        kwargs = dict(data)
        for name in ("dead_ranks", "straggler_ranks"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return FaultPolicy(**kwargs)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, in simulated seconds."""

    #: Retries *after* the first attempt; the attempt budget is
    #: ``max_retries + 1``.
    max_retries: int = 3
    #: Backoff before the first retry.
    backoff_base_s: float = 1e-6
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Cap on any single backoff interval.
    backoff_max_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff intervals must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        return min(
            self.backoff_base_s * self.backoff_factor ** max(0, attempt),
            self.backoff_max_s,
        )

    def with_(self, **overrides) -> "RetryPolicy":
        from dataclasses import replace

        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RetryPolicy":
        return RetryPolicy(**data)


class FaultInjector:
    """Seed-driven deterministic randomness for one injection stream.

    Streams are derived from ``(policy.seed, stream name)`` through
    :class:`random.Random`'s string seeding (SHA-512 based — stable
    across processes and ``PYTHONHASHSEED``), so the DMA engine, the RMA
    engine, the communicator and the artifact store each replay their
    own identical fault sequence for a given seed no matter how many
    draws the others make.
    """

    def __init__(self, policy: FaultPolicy, stream: str = "root") -> None:
        self.policy = policy
        self.stream = stream
        self._rng = random.Random(f"swgemm-faults/{policy.seed}/{stream}")
        #: injected events per site, for reports and tests
        self.counts: Dict[str, int] = {}

    def fork(self, stream: str) -> "FaultInjector":
        """A child injector with an independent deterministic stream."""
        return FaultInjector(self.policy, f"{self.stream}/{stream}")

    # -- draws ---------------------------------------------------------------

    def _hit(self, rate: float, site: str) -> bool:
        if not self.policy.enabled or rate <= 0.0:
            return False
        hit = self._rng.random() < rate
        if hit:
            self.counts[site] = self.counts.get(site, 0) + 1
        return hit

    def transfer_fault(self, site: str) -> bool:
        """Transient failure of one message on ``site`` ("dma"/"rma"/"comm")."""
        rate = {
            "dma": self.policy.dma_fault_rate,
            "rma": self.policy.rma_fault_rate,
            "comm": self.policy.comm_fault_rate,
        }.get(site, 0.0)
        return self._hit(rate, f"{site}_fault")

    def corrupts(self, site: str) -> bool:
        return self._hit(self.policy.corruption_rate, f"{site}_corruption")

    def drops_reply(self, site: str) -> bool:
        return self._hit(self.policy.reply_drop_rate, f"{site}_reply_drop")

    def compile_crash(self) -> bool:
        """One isolated compile hard-crashes its worker subprocess."""
        return self._hit(self.policy.compile_crash_rate, "compile_crash")

    def compile_hang(self) -> bool:
        """One isolated compile stalls past its wall-clock deadline."""
        return self._hit(self.policy.compile_hang_rate, "compile_hang")

    def latency_factor(self, site: str) -> float:
        if self._hit(self.policy.latency_spike_rate, f"{site}_latency_spike"):
            return self.policy.latency_spike_factor
        return 1.0

    # -- payload mutation ----------------------------------------------------

    def corrupt_tile(
        self, flat: np.ndarray, positions: Optional[Sequence[int]] = None
    ) -> int:
        """Flip one element of ``flat`` (restricted to ``positions`` when
        given, e.g. the strided footprint of a ``dma_iput``).  Returns the
        corrupted index; the perturbation always changes the value."""
        if positions is not None:
            index = int(positions[self._rng.randrange(len(positions))])
        else:
            index = self._rng.randrange(flat.size)
        flat[index] += 1.0 + abs(flat[index])
        return index

    def corrupt_artifact(self, path) -> bool:
        """Truncate an on-disk artifact at ``artifact_corruption_rate``."""
        if not self._hit(self.policy.artifact_corruption_rate, "artifact_corruption"):
            return False
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
        return True
